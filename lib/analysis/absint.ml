(* Machine-level abstract interpretation of capability code.

   Two consumers, one transfer function:

   - [verify]: recover a CFG (cfg.ml) from a loaded image and run a
     forward fixpoint per function over an abstract capability domain,
     emitting located diagnostics for statically provable capability
     violations (untagged use, provable out-of-bounds, missing
     permission, sealed dereference, monotonicity-violating derivation,
     unaligned jump targets, division by zero). Surfaced through
     [cheri_run --verify] and the bin/cheri_verify corpus driver.

   - [scan_code] / [facts_of_code]: a per-superblock pass producing the
     check-elision fact table the block engine consumes (Facts,
     bbcache.ml). A fact (entry, i) means: *if* execution proceeds
     straight-line from [entry] through instruction [i], the capability
     check guarding [i]'s memory access cannot fail. Each superblock is
     analyzed from a Top entry state (only a concrete DDC and PCC
     permission bound are assumed), so the claim holds no matter how
     control reached [entry] — wild indirect jumps included. The same
     pass computes the dual "must-trap" table the soundness oracle in
     test/test_absint.ml replays dynamically.

   The domain tracks, per capability register (and per csp-relative spill
   slot in [verify]'s trusted mode): tag and seal as three-valued facts,
   lower/upper permission sets, a proven cursor-relative in-bounds window,
   exact cursor/bounds offsets when derivations pin them, an upper bound
   on top-addr, a provenance tag reusing PR 2's lattice (Lint.prov), and
   the fully concrete value when a derivation chain from a constant root
   (DDC, NULL) determines it. See docs/ABSINT.md. *)

module Cap = Cheri_cap.Cap
module Perms = Cheri_cap.Perms
module Compress = Cheri_cap.Compress
module Insn = Cheri_isa.Insn
module Reg = Cheri_isa.Reg
module Facts = Cheri_isa.Facts
module IMap = Map.Make (Int)

(* --- Domain ---------------------------------------------------------------- *)

type tri = Yes | No | Maybe

let tri_join a b = if a = b then a else Maybe

type aint = Cst of int | Any

let aint_join a b = if a = b then a else Any

type acap = {
  a_tag : tri;
  a_seal : tri;
  a_must : Perms.t;            (* permissions definitely present *)
  a_may : Perms.t;             (* permissions possibly present *)
  a_win : (int * int) option;  (* proven: [addr+lo, addr+hi) within bounds *)
  a_eb : (int * int) option;   (* exact: (addr - base, top - addr) *)
  a_boff : int option;         (* exact: addr - base alone (weaker than a_eb;
                                  survives when only the length is unknown) *)
  a_topoff : int option;       (* upper bound on top - addr *)
  a_prov : Lint.prov;          (* provenance, PR 2's lattice *)
  a_conc : Cap.t option;       (* exactly-known concrete value *)
}

let top_acap =
  { a_tag = Maybe; a_seal = Maybe; a_must = Perms.none; a_may = Perms.all;
    a_win = None; a_eb = None; a_boff = None; a_topoff = None;
    a_prov = Lint.Unknown; a_conc = None }

let of_cap ?(prov = Lint.Unknown) c =
  let addr = Cap.addr c and base = Cap.base c and top = Cap.top c in
  { a_tag = (if Cap.is_tagged c then Yes else No);
    a_seal = (if Cap.is_sealed c then Yes else No);
    a_must = Cap.perms c; a_may = Cap.perms c;
    a_win =
      (if base <= addr && addr <= top && base < top
       then Some (base - addr, top - addr) else None);
    a_eb = Some (addr - base, top - addr);
    a_boff = Some (addr - base);
    a_topoff = Some (top - addr);
    a_prov = prov;
    a_conc = Some c }

let null_acap = of_cap ~prov:Lint.Null Cap.null

let join_acap ~widen a b =
  if a == b then a
  else
    let keep_if_stable x y = match x, y with
      | Some u, Some v when u = v -> Some u
      | _ -> None
    in
    { a_tag = tri_join a.a_tag b.a_tag;
      a_seal = tri_join a.a_seal b.a_seal;
      a_must = Perms.inter a.a_must b.a_must;
      a_may = Perms.union a.a_may b.a_may;
      a_win =
        (if widen then keep_if_stable a.a_win b.a_win
         else
           match a.a_win, b.a_win with
           | Some (l1, h1), Some (l2, h2) ->
             let l = max l1 l2 and h = min h1 h2 in
             if l <= h then Some (l, h) else None
           | _ -> None);
      a_eb = keep_if_stable a.a_eb b.a_eb;
      a_boff = keep_if_stable a.a_boff b.a_boff;
      a_topoff =
        (if widen then keep_if_stable a.a_topoff b.a_topoff
         else
           match a.a_topoff, b.a_topoff with
           | Some x, Some y -> Some (max x y)
           | _ -> None);
      a_prov = Lint.join a.a_prov b.a_prov;
      a_conc =
        (match a.a_conc, b.a_conc with
         | Some x, Some y when Cap.equal x y -> Some x
         | _ -> None) }

(* --- Analysis state -------------------------------------------------------- *)

type st = {
  g : aint array;              (* 32 GPRs; r0 pinned to Cst 0 by getg *)
  c : acap array;              (* 32 capability registers *)
  mutable ddc : acap;
  mutable slots : acap IMap.t; (* csp-relative spill slots *)
}

type env = {
  e_ddc : acap;                (* DDC at image entry *)
  e_pcc_may : Perms.t;         (* upper bound on any reachable PCC's perms *)
}

let fresh_st env =
  { g = Array.make 32 Any; c = Array.make 32 top_acap; ddc = env.e_ddc;
    slots = IMap.empty }

let copy_st st =
  { g = Array.copy st.g; c = Array.copy st.c; ddc = st.ddc; slots = st.slots }

let getg st r = if r = 0 then Cst 0 else st.g.(r)
let setg st r v = if r <> 0 then st.g.(r) <- v

let getc st r = if r = 0 then null_acap else st.c.(r)

(* Writing csp moves the frame cursor: every slot key goes stale. The
   CIncOffsetImm arm re-keys instead of calling this. *)
let setc st r v =
  if r <> 0 then begin
    if r = Reg.csp then st.slots <- IMap.empty;
    st.c.(r) <- v
  end

(* Refinement writes: the register still holds the same runtime value, we
   merely learned more about it — slots stay valid. *)
let refinec st r v = if r <> 0 then st.c.(r) <- v

(* A data write may have cleared an aliased in-memory capability's tag but
   cannot have created one; bounds/permission claims survive for must-trap
   purposes (if the bytes changed, the tag is gone and the tag check fires
   first), but proved-safe claims must be dropped. *)
let downgrade_slot v = { v with a_tag = tri_join v.a_tag No; a_conc = None }

let join_st ~widen dst src =
  let changed = ref false in
  let g = Array.init 32 (fun i ->
    let j = aint_join dst.g.(i) src.g.(i) in
    if j <> dst.g.(i) then changed := true;
    j)
  in
  let c = Array.init 32 (fun i ->
    let j = join_acap ~widen dst.c.(i) src.c.(i) in
    if j <> dst.c.(i) then changed := true;
    j)
  in
  let ddc = join_acap ~widen dst.ddc src.ddc in
  if ddc <> dst.ddc then changed := true;
  let slots =
    IMap.merge
      (fun _ a b ->
        match a, b with
        | Some x, Some y -> Some (join_acap ~widen x y)
        | _ -> None)
      dst.slots src.slots
  in
  if not (IMap.equal ( = ) slots dst.slots) then changed := true;
  ({ g; c; ddc; slots }, !changed)

(* After a call, syscall or rt upcall: the callee (or kernel) may have
   written any register and any memory the caller's capabilities reach, so
   only the stack cursor and the DDC (which user code cannot change: see
   the system_regs argument in verify) survive. *)
let clobber_after_call st =
  let out = copy_st st in
  for i = 1 to 31 do
    out.g.(i) <- Any;
    if i <> Reg.csp then out.c.(i) <- top_acap
  done;
  out.slots <- IMap.empty;
  out

(* --- Function summaries -----------------------------------------------------

   Context-insensitive entry->exit transformers. A callee is analyzed once
   from a generic entry state (Top registers; see [analyze_fn]), so its
   exit state over-approximates its effect for *every* call site, and a
   call edge applies the summary instead of clobbering the world:
   registers the callee provably never writes keep the caller's facts,
   written ones take the callee's exit value (sound because the callee's
   entry state subsumes the caller's actual arguments).

   [su_exit = None] means the function is not (yet) known to return — the
   bottom transformer: during the ascending whole-image fixpoint it makes
   call fall-through edges dead until a return path is found, and a
   function that truly never returns keeps its callers' fall-through
   blocks unreachable (no diagnostics are emitted from them).

   [su_poison] degrades the summary to exactly the old pessimistic
   clobber: set when the function returns through a computed register
   (neither ra nor cra — the exit state would not describe where control
   actually goes) and, as a soundness backstop, on every summary when the
   outer worklist overruns its iteration budget (a truncated fixpoint is
   not a fixpoint). *)

type summary = {
  mutable su_writes : int;   (* creg bitmask the function may write *)
  mutable su_gwrites : int;  (* gpr bitmask the function may write *)
  mutable su_stores : bool;  (* may store through any reachable capability *)
  mutable su_exit : st option;      (* join over return-site states *)
  mutable su_exit_joins : int;
  mutable su_poison : bool;  (* degrade to clobber_after_call *)
}

let su_bottom () =
  { su_writes = 0; su_gwrites = 0; su_stores = false; su_exit = None;
    su_exit_joins = 0; su_poison = false }

(* Caller state across a summarized call. csp survives by calling
   convention, exactly as in [clobber_after_call]; a store anywhere in the
   callee may have reached any caller-visible memory, so spill slots are
   dropped wholesale. *)
let apply_summary st su =
  if su.su_poison then Some (clobber_after_call st)
  else
    match su.su_exit with
    | None -> None
    | Some ex ->
      let out = copy_st st in
      for r = 1 to 31 do
        if (su.su_gwrites lsr r) land 1 = 1 then out.g.(r) <- Any;
        if r <> Reg.csp && (su.su_writes lsr r) land 1 = 1 then
          out.c.(r) <- ex.c.(r)
      done;
      if su.su_stores then out.slots <- IMap.empty;
      Some out

(* Join [src] (a freshly recomputed summary) into [dst] in place; returns
   whether [dst] grew. Ascending on every component, with widening on the
   exit join after a few rounds, so the outer fixpoint terminates. *)
let join_summary dst src =
  let changed = ref false in
  let w = dst.su_writes lor src.su_writes in
  if w <> dst.su_writes then (dst.su_writes <- w; changed := true);
  let gw = dst.su_gwrites lor src.su_gwrites in
  if gw <> dst.su_gwrites then (dst.su_gwrites <- gw; changed := true);
  if src.su_stores && not dst.su_stores then
    (dst.su_stores <- true; changed := true);
  if src.su_poison && not dst.su_poison then
    (dst.su_poison <- true; changed := true);
  (match dst.su_exit, src.su_exit with
   | _, None -> ()
   | None, Some ex -> dst.su_exit <- Some (copy_st ex); changed := true
   | Some cur, Some ex ->
     dst.su_exit_joins <- dst.su_exit_joins + 1;
     let j, c = join_st ~widen:(dst.su_exit_joins > 8) cur ex in
     if c then (dst.su_exit <- Some j; changed := true));
  !changed

(* --- Verdicts -------------------------------------------------------------- *)

type kind =
  | K_cap of Cap.violation
  | K_jump_align
  | K_div

let kind_name = function
  | K_cap Cap.Tag_violation -> "tag"
  | K_cap Cap.Seal_violation -> "seal"
  | K_cap (Cap.Permit_violation p) ->
    Printf.sprintf "perm(%s)" (Perms.to_string p)
  | K_cap Cap.Bounds_violation -> "bounds"
  | K_cap Cap.Length_violation -> "length"
  | K_cap Cap.Monotonicity_violation -> "monotonicity"
  | K_cap Cap.Representability_violation -> "representability"
  | K_cap Cap.Alignment_violation -> "alignment"
  | K_jump_align -> "jump-align"
  | K_div -> "div-zero"

type averdict = {
  av_site : bool;                       (* carries an elidable cap check *)
  av_elide : bool;                      (* ... and it is discharged *)
  av_must : (kind * Lint.prov) option;  (* provably traps when reached *)
}

let quiet = { av_site = false; av_elide = false; av_must = None }

(* --- Access judgement ------------------------------------------------------ *)

(* Decide the fate of [check_cap cap ~perm] over [addr+off, addr+off+len).
   Returns (elide, must): one proven-failing check suffices for must-trap
   (either it or an earlier check in the architectural order traps);
   eliding needs every check proven to pass. *)
let judge_cap a ~perm ~off ~len =
  match a.a_conc with
  | Some cc ->
    let addr = Cap.addr cc + off in
    (match
       (try Cap.check_access_at cc ~perm ~addr ~len; None
        with Cap.Cap_error v -> Some v)
     with
     | Some v -> (false, Some (K_cap v))
     | None ->
       if addr land (len - 1) <> 0 then
         (* check_cap passes (elidable) but the access itself will raise
            an alignment trap: both claims hold at once. *)
         (true, Some (K_cap Cap.Alignment_violation))
       else (true, None))
  | None ->
    if a.a_tag = No then (false, Some (K_cap Cap.Tag_violation))
    else if a.a_seal = Yes then (false, Some (K_cap Cap.Seal_violation))
    else if not (Perms.has a.a_may perm) then
      (false, Some (K_cap (Cap.Permit_violation perm)))
    else
      let oob =
        (match a.a_eb with
         | Some (lo, hi) -> off < -lo || off + len > hi
         | None -> false)
        || (match a.a_boff with Some bo -> off < -bo | None -> false)
        || (match a.a_topoff with Some h -> off + len > h | None -> false)
      in
      if oob then (false, Some (K_cap Cap.Bounds_violation))
      else
        let covered =
          (match a.a_eb with
           | Some (lo, hi) -> off >= -lo && off + len <= hi
           | None -> false)
          || (match a.a_win with
              | Some (l, h) -> l <= off && off + len <= h
              | None -> false)
        in
        ( a.a_tag = Yes && a.a_seal = No && Perms.has a.a_must perm && covered,
          None )

(* Legacy (DDC-relative) accesses: the effective address is absolute, so
   bounds facts only bite when both the DDC and the address are known. *)
let judge_legacy d ~perm ~addr ~len =
  match d.a_conc, addr with
  | Some cc, Cst va ->
    (match
       (try Cap.check_access_at cc ~perm ~addr:va ~len; None
        with Cap.Cap_error v -> Some v)
     with
     | Some v -> (false, Some (K_cap v))
     | None ->
       if va land (len - 1) <> 0 then (true, Some (K_cap Cap.Alignment_violation))
       else (true, None))
  | _ ->
    if d.a_tag = No then (false, Some (K_cap Cap.Tag_violation))
    else if d.a_seal = Yes then (false, Some (K_cap Cap.Seal_violation))
    else if not (Perms.has d.a_may perm) then
      (false, Some (K_cap (Cap.Permit_violation perm)))
    else (false, None)

(* A successful checked access proves tag, unsealedness, the permission,
   and in-bounds-ness of the touched window (hulled into a_win). *)
let refine_access a ~perm ~off ~len =
  let win =
    match a.a_win with
    | Some (l, h) -> Some (min l off, max h (off + len))
    | None -> Some (off, off + len)
  in
  { a with a_tag = Yes; a_seal = No;
    a_must = Perms.union a.a_must perm;
    a_may = Perms.union a.a_may perm;
    a_win = win }

let refine_legacy d ~perm =
  { d with a_tag = Yes; a_seal = No;
    a_must = Perms.union d.a_must perm;
    a_may = Perms.union d.a_may perm }

(* Derivations requiring a tagged, unsealed source. *)
let derive_must a =
  if a.a_tag = No then Some (K_cap Cap.Tag_violation, a.a_prov)
  else if a.a_seal = Yes then Some (K_cap Cap.Seal_violation, a.a_prov)
  else None

(* --- Abstract derivation helpers ------------------------------------------- *)

(* Cursor move by a known delta. Bounds fields shift; the tag survives only
   if the new cursor provably stays inside [base, top) (the representable
   window always contains the bounds). *)
let inc_acap a d =
  match a.a_conc with
  | Some cc ->
    (match (try Some (Cap.inc_addr cc d) with Cap.Cap_error _ -> None) with
     | Some cc' -> of_cap ~prov:a.a_prov cc'
     | None -> { a with a_conc = None })  (* traps; post-state unreachable *)
  | None ->
    let tag' =
      match a.a_tag with
      | No -> No
      | t ->
        let inb =
          (match a.a_eb with
           | Some (lo, hi) -> lo + d >= 0 && hi - d > 0
           | None -> false)
          || (match a.a_win with Some (l, h) -> l <= d && d < h | None -> false)
        in
        if inb then t else Maybe
    in
    { a with a_tag = tag';
      a_win = Option.map (fun (l, h) -> (l - d, h - d)) a.a_win;
      a_eb = Option.map (fun (l, h) -> (l + d, h - d)) a.a_eb;
      a_boff = Option.map (fun l -> l + d) a.a_boff;
      a_topoff = Option.map (fun h -> h - d) a.a_topoff;
      a_conc = None }

(* Cursor moved to an unknown absolute address. *)
let unknown_addr_acap a =
  { a with a_tag = (if a.a_tag = No then No else Maybe);
    a_win = None; a_eb = None; a_boff = None; a_topoff = None; a_conc = None }

let setbounds_must a len ~exact =
  match derive_must a with
  | Some _ as m -> m
  | None ->
    (match len with
     | Cst l when l < 0 -> Some (K_cap Cap.Length_violation, a.a_prov)
     | Cst l ->
       let mono =
         (match a.a_eb with
          | Some (lo, hi) -> lo < 0 || l > hi
          | None -> false)
         || (match a.a_topoff with Some h -> l > h | None -> false)
       in
       if mono then Some (K_cap Cap.Monotonicity_violation, a.a_prov)
       else if exact && Compress.crrl l <> l then
         Some (K_cap Cap.Representability_violation, a.a_prov)
       else None
     | Any -> None)

(* Post-state of a *successful* set-bounds: source was tagged and unsealed,
   result keeps the perms; small (exponent-0) and exact requests pin the
   bounds precisely, padded ones still guarantee the requested window. *)
let setbounds_result a len ~exact =
  match a.a_conc, len with
  | Some cc, Cst l ->
    (match (try Some (Cap.set_bounds ~exact cc ~len:l) with Cap.Cap_error _ -> None) with
     | Some cc' -> of_cap ~prov:a.a_prov cc'
     | None -> { a with a_conc = None })
  | _ ->
    (match len with
     | Cst l when l >= 0 && (exact || Compress.exponent_of_length l = 0) ->
       { a with a_tag = Yes; a_seal = No; a_win = Some (0, l);
         a_eb = Some (0, l); a_boff = Some 0; a_topoff = Some l; a_conc = None }
     | Cst l when l >= 0 ->
       (* Padding may lower the base below the cursor, so only the
          requested window — not the exact base offset — is known. *)
       { a with a_tag = Yes; a_seal = No; a_win = Some (0, l); a_eb = None;
         a_boff = None; a_conc = None }
     | _ ->
       (* Unknown length: an exact request still pins base = cursor. *)
       { a with a_tag = Yes; a_seal = No; a_win = None; a_eb = None;
         a_boff = (if exact then Some 0 else None); a_conc = None })

(* --- ALU folding ----------------------------------------------------------- *)

let fold1 f a = match a with Cst x -> Cst (f x) | Any -> Any
let fold2 f a b = match a, b with Cst x, Cst y -> Cst (f x y) | _ -> Any
let ultu a b = if a lxor min_int < b lxor min_int then 1 else 0

(* --- Transfer function ----------------------------------------------------- *)

(* One non-terminator instruction. Mutates [st]; the returned verdict
   reports whether the instruction carries an elidable capability check,
   whether it was discharged, and whether it provably traps when reached.
   Post-states assume the instruction did NOT trap (a trapping execution
   never reaches the next instruction), which is what lets derivations
   refine tag/seal facts. *)
let step_st env st (insn : Insn.t) : averdict =
  match insn with
  | Insn.Li (rd, v) -> setg st rd (Cst v); quiet
  | Move (rd, rs) -> setg st rd (getg st rs); quiet
  | Addu (rd, rs, rt) -> setg st rd (fold2 ( + ) (getg st rs) (getg st rt)); quiet
  | Addiu (rd, rs, i) -> setg st rd (fold1 (fun x -> x + i) (getg st rs)); quiet
  | Subu (rd, rs, rt) -> setg st rd (fold2 ( - ) (getg st rs) (getg st rt)); quiet
  | Mul (rd, rs, rt) -> setg st rd (fold2 ( * ) (getg st rs) (getg st rt)); quiet
  | Div (rd, rs, rt) | Rem (rd, rs, rt) ->
    let a = getg st rs and b = getg st rt in
    let must =
      match a, b with
      | _, Cst 0 -> Some (K_div, Lint.Pure_int)
      | Cst x, Cst y when x = min_int && y = -1 -> Some (K_div, Lint.Pure_int)
      | _ -> None
    in
    let v =
      match a, b, must with
      | Cst x, Cst y, None ->
        Cst (match insn with Insn.Div _ -> x / y | _ -> x mod y)
      | _ -> Any
    in
    setg st rd v;
    { quiet with av_must = must }
  | And_ (rd, rs, rt) -> setg st rd (fold2 ( land ) (getg st rs) (getg st rt)); quiet
  | Andi (rd, rs, i) -> setg st rd (fold1 (fun x -> x land i) (getg st rs)); quiet
  | Or_ (rd, rs, rt) -> setg st rd (fold2 ( lor ) (getg st rs) (getg st rt)); quiet
  | Ori (rd, rs, i) -> setg st rd (fold1 (fun x -> x lor i) (getg st rs)); quiet
  | Xor_ (rd, rs, rt) -> setg st rd (fold2 ( lxor ) (getg st rs) (getg st rt)); quiet
  | Xori (rd, rs, i) -> setg st rd (fold1 (fun x -> x lxor i) (getg st rs)); quiet
  | Nor_ (rd, rs, rt) ->
    setg st rd (fold2 (fun x y -> lnot (x lor y)) (getg st rs) (getg st rt));
    quiet
  | Sll (rd, rs, sh) -> setg st rd (fold1 (fun x -> x lsl sh) (getg st rs)); quiet
  | Srl (rd, rs, sh) -> setg st rd (fold1 (fun x -> x lsr sh) (getg st rs)); quiet
  | Sra (rd, rs, sh) -> setg st rd (fold1 (fun x -> x asr sh) (getg st rs)); quiet
  | Sllv (rd, rs, rt) ->
    setg st rd (fold2 (fun x y -> x lsl (y land 63)) (getg st rs) (getg st rt));
    quiet
  | Srlv (rd, rs, rt) ->
    setg st rd (fold2 (fun x y -> x lsr (y land 63)) (getg st rs) (getg st rt));
    quiet
  | Srav (rd, rs, rt) ->
    setg st rd (fold2 (fun x y -> x asr (y land 63)) (getg st rs) (getg st rt));
    quiet
  | Slt (rd, rs, rt) ->
    setg st rd (fold2 (fun x y -> if x < y then 1 else 0) (getg st rs) (getg st rt));
    quiet
  | Sltu (rd, rs, rt) -> setg st rd (fold2 ultu (getg st rs) (getg st rt)); quiet
  | Slti (rd, rs, i) ->
    setg st rd (fold1 (fun x -> if x < i then 1 else 0) (getg st rs));
    quiet
  | Sltiu (rd, rs, i) -> setg st rd (fold1 (fun x -> ultu x i) (getg st rs)); quiet
  (* Memory. *)
  | Load { w; rd; base; off; _ } ->
    let addr = fold1 (fun x -> x + off) (getg st base) in
    let elide, must = judge_legacy st.ddc ~perm:Perms.load ~addr ~len:w in
    st.ddc <- refine_legacy st.ddc ~perm:Perms.load;
    setg st rd Any;
    { av_site = true; av_elide = elide;
      av_must = Option.map (fun k -> (k, st.ddc.a_prov)) must }
  | Store { w; base; off; _ } ->
    let addr = fold1 (fun x -> x + off) (getg st base) in
    let elide, must = judge_legacy st.ddc ~perm:Perms.store ~addr ~len:w in
    st.ddc <- refine_legacy st.ddc ~perm:Perms.store;
    st.slots <- IMap.map downgrade_slot st.slots;
    { av_site = true; av_elide = elide;
      av_must = Option.map (fun k -> (k, st.ddc.a_prov)) must }
  | CLoad { w; rd; cb; off; _ } ->
    let a = getc st cb in
    let elide, must = judge_cap a ~perm:Perms.load ~off ~len:w in
    refinec st cb (refine_access a ~perm:Perms.load ~off ~len:w);
    setg st rd Any;
    { av_site = true; av_elide = elide;
      av_must = Option.map (fun k -> (k, a.a_prov)) must }
  | CStore { w; cb; off; _ } ->
    let a = getc st cb in
    let elide, must = judge_cap a ~perm:Perms.store ~off ~len:w in
    refinec st cb (refine_access a ~perm:Perms.store ~off ~len:w);
    st.slots <-
      (if cb = Reg.csp then
         IMap.mapi
           (fun k v ->
             if k < off + w && k + Cap.sizeof > off then downgrade_slot v else v)
           st.slots
       else IMap.map downgrade_slot st.slots);
    { av_site = true; av_elide = elide;
      av_must = Option.map (fun k -> (k, a.a_prov)) must }
  | CLC { cd; cb; off } ->
    let a = getc st cb in
    let elide, must = judge_cap a ~perm:Perms.load ~off ~len:Cap.sizeof in
    let a' = refine_access a ~perm:Perms.load ~off ~len:Cap.sizeof in
    refinec st cb a';
    let loaded =
      if cb = Reg.csp then
        match IMap.find_opt off st.slots with Some v -> v | None -> top_acap
      else top_acap
    in
    let loaded =
      if not (Perms.has a'.a_may Perms.load_cap) then
        { loaded with a_tag = No; a_conc = None }
      else if Perms.has a'.a_must Perms.load_cap then loaded
      else { loaded with a_tag = tri_join loaded.a_tag No; a_conc = None }
    in
    setc st cd loaded;
    { av_site = true; av_elide = elide;
      av_must = Option.map (fun k -> (k, a.a_prov)) must }
  | CSC { cs; cb; off } ->
    let a = getc st cb in
    let v = getc st cs in
    let elide, must = judge_cap a ~perm:Perms.store ~off ~len:Cap.sizeof in
    let must =
      match must with
      | Some k -> Some (k, a.a_prov)
      | None ->
        (* Value-dependent check: storing a tagged capability needs
           STORE_CAP on the authorizing capability. *)
        if v.a_tag = Yes && not (Perms.has a.a_may Perms.store_cap) then
          Some (K_cap (Cap.Permit_violation Perms.store_cap), v.a_prov)
        else None
    in
    refinec st cb (refine_access a ~perm:Perms.store ~off ~len:Cap.sizeof);
    st.slots <-
      (if cb = Reg.csp then
         IMap.add off v
           (IMap.filter
              (fun k _ -> k = off || k + Cap.sizeof <= off || k >= off + Cap.sizeof)
              st.slots)
       else IMap.empty);
    { av_site = true; av_elide = elide; av_must = must }
  (* Capability inspection. *)
  | CMove (cd, cb) -> setc st cd (getc st cb); quiet
  | CGetBase (rd, cb) ->
    setg st rd
      (match (getc st cb).a_conc with Some c -> Cst (Cap.base c) | None -> Any);
    quiet
  | CGetLen (rd, cb) ->
    setg st rd
      (match (getc st cb).a_conc with Some c -> Cst (Cap.length c) | None -> Any);
    quiet
  | CGetAddr (rd, cb) ->
    setg st rd
      (match (getc st cb).a_conc with Some c -> Cst (Cap.addr c) | None -> Any);
    quiet
  | CGetOffset (rd, cb) ->
    setg st rd
      (match (getc st cb).a_conc with Some c -> Cst (Cap.offset c) | None -> Any);
    quiet
  | CGetPerm (rd, cb) ->
    setg st rd
      (match (getc st cb).a_conc with Some c -> Cst (Cap.perms c) | None -> Any);
    quiet
  | CGetTag (rd, cb) ->
    setg st rd
      (match (getc st cb).a_tag with Yes -> Cst 1 | No -> Cst 0 | Maybe -> Any);
    quiet
  | CGetType (rd, cb) ->
    setg st rd
      (match (getc st cb).a_conc with Some c -> Cst (Cap.otype c) | None -> Any);
    quiet
  (* Capability derivation. *)
  | CSetBounds (cd, cb, rt) ->
    let a = getc st cb in
    let len = getg st rt in
    let must = setbounds_must a len ~exact:false in
    setc st cd (setbounds_result a len ~exact:false);
    { quiet with av_must = must }
  | CSetBoundsImm (cd, cb, l) ->
    let a = getc st cb in
    let must = setbounds_must a (Cst l) ~exact:false in
    setc st cd (setbounds_result a (Cst l) ~exact:false);
    { quiet with av_must = must }
  | CSetBoundsExact (cd, cb, rt) ->
    let a = getc st cb in
    let len = getg st rt in
    let must = setbounds_must a len ~exact:true in
    setc st cd (setbounds_result a len ~exact:true);
    { quiet with av_must = must }
  | CAndPerm (cd, cb, rt) ->
    let a = getc st cb in
    let must = derive_must a in
    let res =
      match a.a_conc, getg st rt with
      | Some cc, Cst m ->
        (match (try Some (Cap.and_perms cc m) with Cap.Cap_error _ -> None) with
         | Some cc' -> of_cap ~prov:a.a_prov cc'
         | None -> { a with a_conc = None })
      | _, Cst m ->
        { a with a_tag = Yes; a_seal = No;
          a_must = Perms.inter a.a_must m; a_may = Perms.inter a.a_may m;
          a_conc = None }
      | _ ->
        { a with a_tag = Yes; a_seal = No; a_must = Perms.none; a_conc = None }
    in
    setc st cd res;
    { quiet with av_must = must }
  | CAndPermImm (cd, cb, m) ->
    let a = getc st cb in
    let must = derive_must a in
    let res =
      match a.a_conc with
      | Some cc ->
        (match (try Some (Cap.and_perms cc m) with Cap.Cap_error _ -> None) with
         | Some cc' -> of_cap ~prov:a.a_prov cc'
         | None -> { a with a_conc = None })
      | None ->
        { a with a_tag = Yes; a_seal = No;
          a_must = Perms.inter a.a_must m; a_may = Perms.inter a.a_may m;
          a_conc = None }
    in
    setc st cd res;
    { quiet with av_must = must }
  | CIncOffset (cd, cb, rt) ->
    let a = getc st cb in
    let must =
      if a.a_seal = Yes && a.a_tag = Yes then
        Some (K_cap Cap.Seal_violation, a.a_prov)
      else None
    in
    let res =
      match getg st rt with
      | Cst d -> inc_acap a d
      | Any -> unknown_addr_acap a
    in
    if cd = Reg.csp && cb = Reg.csp then begin
      (match getg st rt with
       | Cst d ->
         st.slots <-
           IMap.fold (fun k v acc -> IMap.add (k - d) v acc) st.slots IMap.empty
       | Any -> st.slots <- IMap.empty);
      st.c.(cd) <- res
    end
    else setc st cd res;
    { quiet with av_must = must }
  | CIncOffsetImm (cd, cb, d) ->
    let a = getc st cb in
    let must =
      if a.a_seal = Yes && a.a_tag = Yes then
        Some (K_cap Cap.Seal_violation, a.a_prov)
      else None
    in
    let res = inc_acap a d in
    if cd = Reg.csp && cb = Reg.csp then begin
      st.slots <-
        IMap.fold (fun k v acc -> IMap.add (k - d) v acc) st.slots IMap.empty;
      st.c.(cd) <- res
    end
    else setc st cd res;
    { quiet with av_must = must }
  | CSetAddr (cd, cb, rt) ->
    let a = getc st cb in
    let must =
      if a.a_seal = Yes && a.a_tag = Yes then
        Some (K_cap Cap.Seal_violation, a.a_prov)
      else None
    in
    let res =
      match a.a_conc, getg st rt with
      | Some cc, Cst v ->
        (match (try Some (Cap.set_addr cc v) with Cap.Cap_error _ -> None) with
         | Some cc' -> of_cap ~prov:a.a_prov cc'
         | None -> { a with a_conc = None })
      | _ -> unknown_addr_acap a
    in
    setc st cd res;
    { quiet with av_must = must }
  | CClearTag (cd, cb) ->
    let a = getc st cb in
    setc st cd
      { a with a_tag = No;
        a_conc = Option.map Cap.clear_tag a.a_conc };
    quiet
  | CFromPtr (cd, cb, rt) ->
    let src = if cb = 0 then st.ddc else getc st cb in
    let must =
      if src.a_tag = Yes && src.a_seal = Yes then
        Some (K_cap Cap.Seal_violation, src.a_prov)
      else None
    in
    let res =
      match src.a_conc, getg st rt with
      | Some cc, Cst v ->
        (match (try Some (Cap.from_ptr cc v) with Cap.Cap_error _ -> None) with
         | Some cc' -> of_cap ~prov:Lint.Int_derived cc'
         | None -> { top_acap with a_prov = Lint.Int_derived })
      | _ ->
        if src.a_tag = No then
          (* from_ptr on an untagged source returns an untagged NULL-based
             value without trapping. *)
          { a_tag = No; a_seal = No; a_must = Perms.none; a_may = Perms.none;
            a_win = None; a_eb = None; a_boff = None; a_topoff = None;
            a_prov = Lint.Int_derived; a_conc = None }
        else if src.a_tag = Yes then
          { (unknown_addr_acap src) with a_seal = No;
            a_prov = Lint.Int_derived }
        else { top_acap with a_prov = Lint.Int_derived }
    in
    setc st cd res;
    { quiet with av_must = must }
  | CSeal (cd, cb, ct) ->
    let a = getc st cb in
    let s = getc st ct in
    let must =
      match derive_must a with
      | Some _ as m -> m
      | None ->
        if s.a_tag = No then Some (K_cap Cap.Tag_violation, s.a_prov)
        else if s.a_seal = Yes then Some (K_cap Cap.Seal_violation, s.a_prov)
        else if not (Perms.has s.a_may Perms.seal) then
          Some (K_cap (Cap.Permit_violation Perms.seal), s.a_prov)
        else None
    in
    let res =
      match a.a_conc, s.a_conc with
      | Some ca, Some cs ->
        (match (try Some (Cap.seal ca ~with_:cs) with Cap.Cap_error _ -> None) with
         | Some cc -> of_cap ~prov:a.a_prov cc
         | None -> { a with a_seal = Yes; a_tag = Yes; a_conc = None })
      | _ -> { a with a_seal = Yes; a_tag = Yes; a_conc = None }
    in
    setc st cd res;
    { quiet with av_must = must }
  | CUnseal (cd, cb, ct) ->
    let a = getc st cb in
    let s = getc st ct in
    let must =
      if a.a_tag = No then Some (K_cap Cap.Tag_violation, a.a_prov)
      else if a.a_seal = No then Some (K_cap Cap.Seal_violation, a.a_prov)
      else if s.a_tag = No then Some (K_cap Cap.Tag_violation, s.a_prov)
      else if s.a_seal = Yes then Some (K_cap Cap.Seal_violation, s.a_prov)
      else if not (Perms.has s.a_may Perms.unseal) then
        Some (K_cap (Cap.Permit_violation Perms.unseal), s.a_prov)
      else None
    in
    let res =
      match a.a_conc, s.a_conc with
      | Some ca, Some cs ->
        (match (try Some (Cap.unseal ca ~with_:cs) with Cap.Cap_error _ -> None) with
         | Some cc -> of_cap ~prov:a.a_prov cc
         | None -> { a with a_seal = No; a_tag = Yes; a_conc = None })
      | _ -> { a with a_seal = No; a_tag = Yes; a_conc = None }
    in
    setc st cd res;
    { quiet with av_must = must }
  | CRRL (rd, rs) ->
    setg st rd
      (match getg st rs with
       | Cst v when v >= 0 -> Cst (Compress.crrl v)
       | _ -> Any);
    quiet
  | CRAM (rd, rs) ->
    setg st rd
      (match getg st rs with
       | Cst v when v >= 0 -> Cst (Compress.cram v)
       | _ -> Any);
    quiet
  | CReadDDC cd ->
    let must =
      if not (Perms.has env.e_pcc_may Perms.system_regs) then
        Some (K_cap (Cap.Permit_violation Perms.system_regs), Lint.Unknown)
      else None
    in
    setc st cd st.ddc;
    { quiet with av_must = must }
  | CWriteDDC cb ->
    let must =
      if not (Perms.has env.e_pcc_may Perms.system_regs) then
        Some (K_cap (Cap.Permit_violation Perms.system_regs), Lint.Unknown)
      else None
    in
    st.ddc <- getc st cb;
    { quiet with av_must = must }
  | Annot _ | Nop -> quiet
  | Beq _ | Bne _ | Blez _ | Bgtz _ | Bltz _ | Bgez _
  | J _ | Jal _ | Jr _ | Jalr _ | CJR _ | CJAL _ | CJALR _
  | Syscall | Break _ | Rt _ ->
    (* Terminators go through term_verdict. *)
    quiet

(* Terminator judgement. [`Must] claims hold whenever the instruction is
   reached (straight-line from the block entry); [`Warn] marks conditional
   branches to misaligned targets, which only trap when taken — excluded
   from the must-trap oracle since the not-taken path retires fine. *)
let term_verdict st (insn : Insn.t) =
  let misaligned t = t land 3 <> 0 in
  match insn with
  | Insn.Beq (_, _, t) | Bne (_, _, t) | Blez (_, t) | Bgtz (_, t)
  | Bltz (_, t) | Bgez (_, t) ->
    if misaligned t then `Warn (K_jump_align, Lint.Unknown) else `None
  | J t -> if misaligned t then `Must (K_jump_align, Lint.Unknown) else `None
  | Jal t | CJAL (_, t) ->
    if misaligned t then `Must (K_jump_align, Lint.Func) else `None
  | Jr rs | Jalr (_, rs) ->
    (match getg st rs with
     | Cst t when misaligned t -> `Must (K_jump_align, Lint.Unknown)
     | _ -> `None)
  | CJR cb | CJALR (_, cb) ->
    let a = getc st cb in
    if a.a_tag = No then `Must (K_cap Cap.Tag_violation, a.a_prov)
    else
      (match a.a_conc with
       | Some c when not (Cap.is_tagged c) ->
         `Must (K_cap Cap.Tag_violation, a.a_prov)
       | Some c when misaligned (Cap.addr c) -> `Must (K_jump_align, a.a_prov)
       | _ -> `None)
  | Syscall | Rt _ | Break _ -> `None
  | _ -> `None

(* --- Superblock scan (elision facts + must-trap table) --------------------- *)

type scan = {
  sc_facts : Facts.t;
  sc_must : (int, int) Hashtbl.t;  (* entry pc -> must-trap bitmask *)
  sc_sites : int;                  (* elidable check sites visited *)
  sc_elided : int;                 (* ... of which discharged *)
  sc_guarded : int;                (* further checks elidable under guard *)
  sc_cert_sb : int;                (* superblocks with a nonempty tier-3
                                      certificate *)
  sc_cert_insns : int;             (* total certified-prefix instructions *)
  sc_runs : int;                   (* access runs across all certificates *)
  sc_run_accesses : int;           (* accesses covered by those runs *)
  sc_cert_hist : int array;        (* prefix-length histogram, 8 buckets:
                                      0, 1-8, 9-16, ..., 49+ *)
}

(* Histogram bucket for a certified-prefix length. *)
let cert_bucket p = if p <= 0 then 0 else min 7 ((p + 7) / 8)

let make_env ?ddc ?(pcc_may = Perms.all) () =
  let e_ddc =
    match ddc with
    | Some c ->
      of_cap ~prov:(if Cap.is_null c then Lint.Null else Lint.Unknown) c
    | None -> top_acap
  in
  { e_ddc; e_pcc_may = pcc_may }

(* --- Analysis-cost statistics ----------------------------------------------

   Global, resettable counters for the fact-cache/lazy-analysis machinery:
   how many provider calls hit the image-keyed cache, and how many
   superblock fixpoints actually ran, split by whether they were paid up
   front (eager [scan_code]) or on first decode (lazy tables). Surfaced by
   bench/main.ml and BENCH_simulator.json. *)

type cache_stats = {
  mutable cs_hits : int;       (* provider calls answered from the cache *)
  mutable cs_misses : int;     (* provider calls that ran (or deferred) analysis *)
  mutable cs_eager_sb : int;   (* superblock fixpoints run eagerly *)
  mutable cs_lazy_sb : int;    (* superblock fixpoints run on first decode *)
  mutable cs_lazy_gsb : int;   (* guarded pre-scans that re-ran a fixpoint
                                  (0 since the combined resolver serves
                                  both tiers from one scan) *)
  mutable cs_funcs : int;      (* functions summarized (interprocedural) *)
  mutable cs_iters : int;      (* interprocedural worklist iterations *)
  mutable cs_cert_sb : int;    (* lazily-resolved superblocks with a
                                  nonempty tier-3 certificate *)
  mutable cs_cert_insns : int; (* ... total certified-prefix instructions *)
}

let stats = { cs_hits = 0; cs_misses = 0; cs_eager_sb = 0; cs_lazy_sb = 0;
              cs_lazy_gsb = 0; cs_funcs = 0; cs_iters = 0;
              cs_cert_sb = 0; cs_cert_insns = 0 }

(* Certified-prefix length histogram over lazily-resolved superblocks
   (same buckets as [sc_cert_hist]; bucket 0 counts uncertified blocks).
   Guarded by [stats_lock] like the counters above. *)
let lazy_cert_hist = Array.make 8 0

(* Domain safety: the image-keyed memo tables below are shared by reference
   across the fleet's domains (each domain's kernel calls the provider),
   and [stats] is bumped from lazy resolvers running inside any domain's
   block build. [cache_lock] serializes table lookups/inserts and forces;
   [stats_lock] serializes counter updates. They are distinct locks because
   forcing a cached IPA thunk under [cache_lock] re-enters the summarizer,
   which bumps counters — with one (non-reentrant) lock that would
   self-deadlock. Ordering is always cache_lock -> stats_lock, or either
   alone; never the reverse. Reading [stats] fields directly stays lock-free
   and is meaningful once domains have been joined. *)
let cache_lock = Mutex.create ()
let stats_lock = Mutex.create ()
let bump f = Mutex.protect stats_lock f

let reset_stats () =
  bump (fun () ->
      stats.cs_hits <- 0;
      stats.cs_misses <- 0;
      stats.cs_eager_sb <- 0;
      stats.cs_lazy_sb <- 0;
      stats.cs_lazy_gsb <- 0;
      stats.cs_funcs <- 0;
      stats.cs_iters <- 0;
      stats.cs_cert_sb <- 0;
      stats.cs_cert_insns <- 0;
      Array.fill lazy_cert_hist 0 (Array.length lazy_cert_hist) 0)

(* Per-instruction trap classification against the abstract pre-state, for
   the tier-3 certificate scan:
   - [0] — proven unable to raise any trap: pure ALU/inspection forms
     never trap; Div/Rem with a constant nonzero divisor (and no
     min_int/-1 overflow) cannot; cursor moves ([set_addr]-family) only
     trap on a *tagged sealed* source, so a proven-untagged or
     proven-unsealed source is safe (an unrepresentable move clears the
     tag instead of trapping); [and_perms] needs tagged *and* unsealed;
     set-bounds is safe only when fully concrete and the concrete
     derivation succeeds.
   - [1] — a data access: certified separately (its capability check must
     be discharged by tiers 1-2), and it stays a *repair point* for the
     residual dynamic faults (page fault, alignment, CSC value checks).
   - [2] — not proven trap-free here. The certificate scan may still
     rescue cursor moves whose source chains back to a tier-2-guarded
     entry register (the guard proves the entry value tagged and
     unsealed, and derived values stay unsealed). *)
let insn_trap_class st (insn : Insn.t) =
  match insn with
  | Insn.Li _ | Move _ | Addu _ | Addiu _ | Subu _ | Mul _
  | And_ _ | Andi _ | Or_ _ | Ori _ | Xor_ _ | Xori _ | Nor_ _
  | Sll _ | Srl _ | Sra _ | Sllv _ | Srlv _ | Srav _
  | Slt _ | Sltu _ | Slti _ | Sltiu _
  | CMove _ | CGetBase _ | CGetLen _ | CGetAddr _ | CGetOffset _
  | CGetPerm _ | CGetTag _ | CGetType _ | CClearTag _
  | CRRL _ | CRAM _ | Annot _ | Nop -> 0
  | Div (_, rs, rt) | Rem (_, rs, rt) ->
    (match getg st rt with
     | Cst y when y <> 0
               && (y <> -1
                   || (match getg st rs with
                       | Cst x -> x <> min_int
                       | Any -> false)) -> 0
     | _ -> 2)
  | Load _ | Store _ | CLoad _ | CStore _ | CLC _ | CSC _ -> 1
  | CIncOffset (_, cb, _) | CIncOffsetImm (_, cb, _) | CSetAddr (_, cb, _) ->
    let a = getc st cb in
    if a.a_seal = No || a.a_tag = No then 0 else 2
  | CFromPtr (_, cb, _) ->
    let src = if cb = 0 then st.ddc else getc st cb in
    if src.a_tag = No || src.a_seal = No then 0 else 2
  | CAndPerm (_, cb, _) | CAndPermImm (_, cb, _) ->
    let a = getc st cb in
    if a.a_tag = Yes && a.a_seal = No then 0 else 2
  | CSetBounds (_, cb, rt) | CSetBoundsExact (_, cb, rt) ->
    let a = getc st cb in
    (match a.a_conc, getg st rt with
     | Some cc, Cst l ->
       let exact = (match insn with Insn.CSetBoundsExact _ -> true | _ -> false) in
       (match (try ignore (Cap.set_bounds ~exact cc ~len:l); true
               with Cap.Cap_error _ -> false) with
        | true -> 0
        | false -> 2)
     | _ -> 2)
  | CSetBoundsImm (_, cb, l) ->
    let a = getc st cb in
    (match a.a_conc with
     | Some cc ->
       (match (try ignore (Cap.set_bounds ~exact:false cc ~len:l); true
               with Cap.Cap_error _ -> false) with
        | true -> 0
        | false -> 2)
     | None -> 2)
  | _ -> 2

(* One superblock fixpoint: the straight-line scan the block engine's
   decoded blocks mirror, from a Top state at instruction index [e] of the
   region at [base], bounded by [Bbcache.max_block]. Returns the elision
   bitmask, the must-trap bitmask, the (sites, elided) counts, and the
   per-instruction trap classes (for the tier-3 certificate scan; indices
   past the scanned body keep the conservative class 2). This is the unit
   of work both the eager whole-image scan and the lazy pull-through table
   share. *)
let scan_superblock env insns ~e =
  let n = Array.length insns in
  let st = fresh_st env in
  let fmask = ref 0 and mmask = ref 0 in
  let sites = ref 0 and elided = ref 0 in
  let tcls = Array.make Cheri_isa.Bbcache.max_block 2 in
  let set m i = if i >= 0 && i <= Facts.max_index then m := !m lor (1 lsl i) in
  let i = ref 0 in
  let stop = ref false in
  while (not !stop) && !i < Cheri_isa.Bbcache.max_block && e + !i < n do
    let insn = insns.(e + !i) in
    if Insn.is_terminator insn then begin
      (match term_verdict st insn with
       | `Must _ -> set mmask !i
       | `Warn _ | `None -> ());
      stop := true
    end
    else begin
      (* Classified against the pre-state: [step_st] mutates [st]. *)
      tcls.(!i) <- insn_trap_class st insn;
      let v = step_st env st insn in
      if v.av_site then incr sites;
      if v.av_elide then begin
        incr elided;
        set fmask !i
      end;
      if v.av_must <> None then set mmask !i;
      incr i
    end
  done;
  (!fmask, !mmask, !sites, !elided, tcls)

(* --- Guarded-fact pre-scan (tier 2) ----------------------------------------

   The Top-entry superblock scan above can never discharge an access whose
   authorizing capability flows in from outside the block — which is most
   of them: the first stack spill of a block, loads through a pointer that
   was already in a register at entry, GOT loads through the global
   pointer. The guarded tier handles exactly those: a demand-driven
   straight-line pre-scan tracks, for each capability register, whether its
   current value is the *entry* value of some register moved by an exactly
   known byte delta (CMove / CIncOffset with constant offsets), and for
   each GPR an exact integer delta from an entry GPR (Li/Move/Addiu and
   friends). Every access whose authorizing value traces back to an entry
   register demands a [Facts.gpred] on that register: tagged, unsealed,
   carrying the accessed permissions, with a bounds window hulling every
   access footprint *and every intermediate cursor position* of the chain
   (a cursor move outside the representable window would strip the tag
   mid-chain; window ⊆ [base, top] keeps every [Cap.set_addr] on the chain
   tagged, so entry-time validity is sufficient). Legacy (DDC-relative)
   accesses through a tracked GPR demand the DDC form instead, dead after
   any [CWriteDDC] in the prefix.

   Soundness is by construction and entirely independent of the
   interprocedural layer: the predicate conjunction is evaluated against
   the real register file at every block entry (bbcache), and a guard that
   holds implies every guarded check passes. Wild control flow at worst
   makes guards fail, which falls back to the exact path.

   This is also what discharges strided loops: the loop body is a block,
   its guard is evaluated once per iteration (the "one loop-entry
   predicate"), and the hulled window covers the whole per-iteration
   footprint including the stride update, so every in-loop check is
   elided while the trip count stays inside the proven bounds — and the
   first out-of-bounds iteration fails the guard and takes the exact
   path, which traps exactly where the machine would. *)

type corigin = Oent of int * int | Onone       (* entry creg, cursor delta *)
type gorigin = Gent of int * int | Gcst of int | Gnone

type gdemand = {
  mutable dm_perms : int;
  mutable dm_lo : int;          (* window hull, inclusive cursor offsets *)
  mutable dm_hi : int;
  mutable dm_bits : int;        (* fact bits this predicate licenses *)
}

(* At most this many predicates per entry: the mask is all-or-nothing (one
   compiled body per block), so a rarely-valid predicate would also forfeit
   the common ones. Compiled blocks rarely derive from more than two or
   three distinct entry registers. *)
let max_gpreds = 4

let guard_scan ~ddc_dead insns ~e ~fmask =
  let n = Array.length insns in
  let co = Array.init 32 (fun r -> if r = 0 then Onone else Oent (r, 0)) in
  let go = Array.make 32 Gnone in
  for r = 1 to 31 do go.(r) <- Gent (r, 0) done;
  let readg r = if r = 0 then Gcst 0 else go.(r) in
  let cdem : (int, gdemand) Hashtbl.t = Hashtbl.create 8 in
  let ddem : (int, gdemand) Hashtbl.t = Hashtbl.create 4 in
  let ddc_alive = ref (not ddc_dead) in
  let dem tbl r0 =
    match Hashtbl.find_opt tbl r0 with
    | Some d -> d
    | None ->
      let d = { dm_perms = 0; dm_lo = max_int; dm_hi = min_int; dm_bits = 0 } in
      Hashtbl.add tbl r0 d;
      d
  in
  let hull d lo hi =
    if lo < d.dm_lo then d.dm_lo <- lo;
    if hi > d.dm_hi then d.dm_hi <- hi
  in
  let cap_access idx cb perm off len =
    if (fmask lsr idx) land 1 = 0 && idx <= Facts.max_index then
      match co.(cb) with
      | Oent (r0, d) ->
        let dm = dem cdem r0 in
        dm.dm_perms <- dm.dm_perms lor perm;
        hull dm (d + off) (d + off + len);
        dm.dm_bits <- dm.dm_bits lor (1 lsl idx)
      | Onone -> ()
  in
  let legacy_access idx base perm off len =
    if (fmask lsr idx) land 1 = 0 && idx <= Facts.max_index && !ddc_alive then
      match readg base with
      | Gent (g0, d) ->
        let dm = dem ddem g0 in
        dm.dm_perms <- dm.dm_perms lor perm;
        hull dm (d + off) (d + off + len);
        dm.dm_bits <- dm.dm_bits lor (1 lsl idx)
      | Gcst _ | Gnone -> ()
  in
  (* Every retargeting of a tracked chain hulls the new cursor position
     into the entry register's window, so the guard also proves that no
     intermediate [set_addr] on the chain strips the tag. *)
  let move_cursor r0 d' = let dm = dem cdem r0 in hull dm d' d' in
  let i = ref e in
  let stop = ref false in
  while (not !stop) && !i - e < Cheri_isa.Bbcache.max_block && !i < n do
    let insn = insns.(!i) in
    if Insn.is_terminator insn then stop := true
    else begin
      let idx = !i - e in
      (match insn with
       | Insn.CLoad { w; rd; cb; off; _ } ->
         cap_access idx cb Perms.load off w;
         if rd <> 0 then go.(rd) <- Gnone
       | Insn.CStore { w; cb; off; _ } -> cap_access idx cb Perms.store off w
       | Insn.CLC { cd; cb; off } ->
         cap_access idx cb Perms.load off Cap.sizeof;
         co.(cd) <- Onone
       | Insn.CSC { cb; off; _ } -> cap_access idx cb Perms.store off Cap.sizeof
       | Insn.Load { w; rd; base; off; _ } ->
         legacy_access idx base Perms.load off w;
         if rd <> 0 then go.(rd) <- Gnone
       | Insn.Store { w; base; off; _ } -> legacy_access idx base Perms.store off w
       | Insn.CMove (cd, cb) -> if cd <> 0 then co.(cd) <- co.(cb)
       | Insn.CIncOffsetImm (cd, cb, imm) ->
         let p =
           match co.(cb) with
           | Oent (r0, d) -> let d' = d + imm in move_cursor r0 d'; Oent (r0, d')
           | Onone -> Onone
         in
         if cd <> 0 then co.(cd) <- p
       | Insn.CIncOffset (cd, cb, rt) ->
         let p =
           match co.(cb), readg rt with
           | Oent (r0, d), Gcst k -> let d' = d + k in move_cursor r0 d'; Oent (r0, d')
           | _ -> Onone
         in
         if cd <> 0 then co.(cd) <- p
       | Insn.CWriteDDC _ -> ddc_alive := false
       | Insn.Li (rd, v) -> if rd <> 0 then go.(rd) <- Gcst v
       | Insn.Move (rd, rs) -> if rd <> 0 then go.(rd) <- readg rs
       | Insn.Addiu (rd, rs, k) ->
         if rd <> 0 then
           go.(rd) <- (match readg rs with
             | Gent (g, d) -> Gent (g, d + k)
             | Gcst c -> Gcst (c + k)
             | Gnone -> Gnone)
       | Insn.Addu (rd, rs, rt) ->
         if rd <> 0 then
           go.(rd) <- (match readg rs, readg rt with
             | Gent (g, d), Gcst c | Gcst c, Gent (g, d) -> Gent (g, d + c)
             | Gcst a, Gcst b -> Gcst (a + b)
             | _ -> Gnone)
       | Insn.Subu (rd, rs, rt) ->
         if rd <> 0 then
           go.(rd) <- (match readg rs, readg rt with
             | Gent (g, d), Gcst c -> Gent (g, d - c)
             | Gcst a, Gcst b -> Gcst (a - b)
             | _ -> Gnone)
       | _ ->
         (match Insn.creg_def insn with
          | Some cd -> if cd <> 0 then co.(cd) <- Onone
          | None -> ());
         (match Insn.gpr_def insn with
          | Some rd -> if rd <> 0 then go.(rd) <- Gnone
          | None -> ()));
      incr i
    end
  done;
  let cands =
    Hashtbl.fold
      (fun r0 dm acc ->
        if dm.dm_bits <> 0 then (false, r0, dm) :: acc else acc)
      cdem []
    @ Hashtbl.fold
        (fun g0 dm acc ->
          if dm.dm_bits <> 0 then (true, g0, dm) :: acc else acc)
        ddem []
  in
  let cands =
    List.sort
      (fun (_, ra, a) (_, rb, b) ->
        match compare (Facts.popcount b.dm_bits) (Facts.popcount a.dm_bits) with
        | 0 -> compare ra rb
        | c -> c)
      cands
  in
  let rec take k = function
    | [] -> []
    | _ when k = 0 -> []
    | x :: rest -> x :: take (k - 1) rest
  in
  let kept = take max_gpreds cands in
  let gmask = List.fold_left (fun m (_, _, dm) -> m lor dm.dm_bits) 0 kept in
  let preds =
    List.map
      (fun (is_ddc, r0, dm) ->
        { Facts.gp_reg = r0; gp_ddc = is_ddc; gp_perms = dm.dm_perms;
          gp_lo = dm.dm_lo; gp_hi = dm.dm_hi })
      kept
    |> Array.of_list
  in
  (gmask land lnot fmask, preds)

(* --- Tier-3 certificate scan ------------------------------------------------

   Computes a [Facts.cert] for one superblock from the combined elision
   mask ([emask = fmask lor gmask] — exactly the bits the compiled body
   elides when it runs), the guard predicates, and the per-instruction
   trap classes of the Top-entry fixpoint.

   Trap-freedom prefix: the maximal body prefix in which every instruction
   is class 0 (cannot trap at all), a data access (always acceptable: the
   access closure is a *repair point* — the engine records the exact
   instruction index before it runs, so its dynamic faults — a failed
   capability check, page fault, alignment, CSC value checks — trap with
   exact attribution whether or not the check was discharged), or a
   cursor move rescued by a tier-2 guard:
   if the source capability chains back (through the same CMove /
   constant-offset moves tier 2 tracks) to an entry register carrying a
   capability-form predicate, the guard proves the entry value tagged and
   unsealed — derived values stay unsealed (cursor moves preserve the
   otype), and [Cap.set_addr] only traps on tagged *sealed* sources, so
   the move cannot trap whenever the body runs at all. [Cap.and_perms]
   additionally needs the tag, which the guard also preserves: its window
   hulls every tracked intermediate cursor position (see [move_cursor]),
   so no move on the chain can have stripped it. The claims are
   conditional on the guard exactly like the guarded mask itself: the
   engine never runs the compiled body when the guard fails.

   Access runs: maximal sequences of *consecutive* data accesses (no other
   memory operation between members — this is what guarantees the head's
   DL1 line cannot be evicted before the last member probes it), all
   within the certified prefix, within one instruction-line group (the
   fused-dispatch unit), homogeneous in kind (all reads or all writes, so
   one translation covers COW/dirty semantics for the whole run), whose
   addresses are exact syntactic deltas from one chain: capability
   accesses through the same tracked entry register, legacy accesses
   through the same tracked entry GPR, or absolute (constant-address)
   accesses. The run proof is purely about the *address*: follower
   closures still evaluate their capability check (unless elided),
   alignment check and CSC value checks at runtime on the syntactically
   recomputed vaddr — what they skip is the translate and the cache
   probe, which the delta identity and the head's translation make
   redundant. The hulled window [ar_lo, ar_hi) spans at most one 64-byte
   line; whether the physical window actually sits inside a single line
   is rechecked at runtime against the head's translated address, falling
   back to exact per-access probes when it does not. *)
let cert_scan insns ~entry ~e ~gmask ~(preds : Facts.gpred array)
    ~(tcls : int array) =
  let n = Array.length insns in
  let line_shift = Cheri_tagmem.Cache.line_shift in
  let line_size = Cheri_tagmem.Cache.line_size in
  (* A capability-form guard predicate on entry register [r0]? Only kept
     predicates that the engine will actually evaluate count, i.e. only
     when the guarded mask is nonempty ([Facts.add_guarded] drops guards
     that license nothing, and the engine attaches predicates only then). *)
  let guard_on r0 =
    gmask <> 0
    && Array.exists
         (fun p -> (not p.Facts.gp_ddc) && p.Facts.gp_reg = r0)
         preds
  in
  let mk_track () =
    let co = Array.init 32 (fun r -> if r = 0 then Onone else Oent (r, 0)) in
    let go = Array.make 32 Gnone in
    for r = 1 to 31 do go.(r) <- Gent (r, 0) done;
    let readg r = if r = 0 then Gcst 0 else go.(r) in
    (* Mirrors [guard_scan]'s chain tracking exactly, minus the demand
       bookkeeping. *)
    let track insn =
      match insn with
      | Insn.CLoad { rd; _ } -> if rd <> 0 then go.(rd) <- Gnone
      | Insn.CStore _ -> ()
      | Insn.CLC { cd; _ } -> co.(cd) <- Onone
      | Insn.CSC _ -> ()
      | Insn.Load { rd; _ } -> if rd <> 0 then go.(rd) <- Gnone
      | Insn.Store _ -> ()
      | Insn.CMove (cd, cb) -> if cd <> 0 then co.(cd) <- co.(cb)
      | Insn.CIncOffsetImm (cd, cb, imm) ->
        let p =
          match co.(cb) with
          | Oent (r0, d) -> Oent (r0, d + imm)
          | Onone -> Onone
        in
        if cd <> 0 then co.(cd) <- p
      | Insn.CIncOffset (cd, cb, rt) ->
        let p =
          match co.(cb), readg rt with
          | Oent (r0, d), Gcst k -> Oent (r0, d + k)
          | _ -> Onone
        in
        if cd <> 0 then co.(cd) <- p
      | Insn.Li (rd, v) -> if rd <> 0 then go.(rd) <- Gcst v
      | Insn.Move (rd, rs) -> if rd <> 0 then go.(rd) <- readg rs
      | Insn.Addiu (rd, rs, k) ->
        if rd <> 0 then
          go.(rd) <- (match readg rs with
            | Gent (g, d) -> Gent (g, d + k)
            | Gcst c -> Gcst (c + k)
            | Gnone -> Gnone)
      | Insn.Addu (rd, rs, rt) ->
        if rd <> 0 then
          go.(rd) <- (match readg rs, readg rt with
            | Gent (g, d), Gcst c | Gcst c, Gent (g, d) -> Gent (g, d + c)
            | Gcst a, Gcst b -> Gcst (a + b)
            | _ -> Gnone)
      | Insn.Subu (rd, rs, rt) ->
        if rd <> 0 then
          go.(rd) <- (match readg rs, readg rt with
            | Gent (g, d), Gcst c -> Gent (g, d - c)
            | Gcst a, Gcst b -> Gcst (a - b)
            | _ -> Gnone)
      | _ ->
        (match Insn.creg_def insn with
         | Some cd -> if cd <> 0 then co.(cd) <- Onone
         | None -> ());
        (match Insn.gpr_def insn with
         | Some rd -> if rd <> 0 then go.(rd) <- Gnone
         | None -> ())
    in
    (co, readg, track)
  in
  (* Pass 1: the trap-freedom prefix. *)
  let co, _readg, track = mk_track () in
  let prefix = ref 0 in
  let i = ref 0 in
  let stop = ref false in
  while (not !stop) && !i < Cheri_isa.Bbcache.max_block && e + !i < n do
    let insn = insns.(e + !i) in
    if Insn.is_terminator insn then stop := true
    else begin
      let ok =
        match tcls.(!i) with
        | 0 -> true
        | 1 -> true  (* data access: exactly-attributed repair point *)
        | _ ->
          (match insn with
           | Insn.CIncOffset (_, cb, _) | Insn.CIncOffsetImm (_, cb, _)
           | Insn.CSetAddr (_, cb, _)
           | Insn.CAndPerm (_, cb, _) | Insn.CAndPermImm (_, cb, _) ->
             (match co.(cb) with
              | Oent (r0, _) -> guard_on r0
              | Onone -> false)
           | _ -> false)
      in
      if ok then begin
        track insn;
        incr prefix;
        incr i
      end
      else stop := true
    end
  done;
  let prefix = !prefix in
  if prefix = 0 then Facts.no_cert
  else begin
    (* Pass 2: access runs over the certified prefix. *)
    let co, readg, track = mk_track () in
    let r_open = ref false in
    let r_write = ref false in
    let r_key = ref (`Cap 0) in
    let r_head = ref 0 in
    let r_headp = ref 0 in
    let r_lo = ref 0 and r_hi = ref 0 in
    let r_tails = ref [] in
    let runs = ref [] in
    let close () =
      if !r_open && !r_tails <> [] then
        runs := { Facts.ar_head = !r_head;
                  ar_tail = Array.of_list (List.rev !r_tails);
                  ar_lo = !r_lo; ar_hi = !r_hi } :: !runs;
      r_open := false;
      r_tails := []
    in
    let line_of idx = (entry + 4 * idx) lsr line_shift in
    let on_access idx key p w write =
      let start_new () =
        close ();
        match key with
        | Some k ->
          r_open := true; r_write := write; r_key := k;
          r_head := idx; r_headp := p;
          r_lo := 0; r_hi := w
        | None -> ()
      in
      if !r_open && key = Some !r_key && write = !r_write
         && line_of idx = line_of !r_head
      then begin
        let delta = p - !r_headp in
        let lo' = min !r_lo delta and hi' = max !r_hi (delta + w) in
        if hi' - lo' <= line_size then begin
          r_tails := (idx, delta) :: !r_tails;
          r_lo := lo';
          r_hi := hi'
        end
        else start_new ()
      end
      else start_new ()
    in
    let ckey cb = match co.(cb) with
      | Oent (r0, d) -> (Some (`Cap r0), d)
      | Onone -> (None, 0)
    in
    for j = 0 to prefix - 1 do
      let insn = insns.(e + j) in
      (match insn with
       | Insn.CLoad { w; cb; off; _ } ->
         let k, d = ckey cb in on_access j k (d + off) w false
       | Insn.CLC { cb; off; _ } ->
         let k, d = ckey cb in on_access j k (d + off) Cap.sizeof false
       | Insn.CStore { w; cb; off; _ } ->
         let k, d = ckey cb in on_access j k (d + off) w true
       | Insn.CSC { cb; off; _ } ->
         let k, d = ckey cb in on_access j k (d + off) Cap.sizeof true
       | Insn.Load { w; base; off; _ } ->
         (match readg base with
          | Gent (g0, d) -> on_access j (Some (`Gpr g0)) (d + off) w false
          | Gcst v -> on_access j (Some `Abs) (v + off) w false
          | Gnone -> close ())
       | Insn.Store { w; base; off; _ } ->
         (match readg base with
          | Gent (g0, d) -> on_access j (Some (`Gpr g0)) (d + off) w true
          | Gcst v -> on_access j (Some `Abs) (v + off) w true
          | Gnone -> close ())
       | _ -> ());
      track insn
    done;
    close ();
    { Facts.ct_prefix = prefix;
      ct_runs = Array.of_list (List.rev !runs) }
  end

(* Analyze every pc of every region as a potential superblock entry, from a
   Top state: exactly the straight-line runs the block engine decodes (it
   keys blocks by whatever pc control arrives at), bounded by the same
   [Bbcache.max_block]. *)
let scan_code ?ddc ?pcc_may regions =
  let env = make_env ?ddc ?pcc_may () in
  (* A statically untagged DDC (cheriabi's null DDC) makes every legacy
     access a must-trap; DDC-form guards could never fire. *)
  let ddc_dead = env.e_ddc.a_tag = No in
  let facts = Facts.create () in
  let must_tbl = Hashtbl.create 256 in
  let sites = ref 0 and elided = ref 0 and guarded = ref 0 in
  let cert_sb = ref 0 and cert_insns = ref 0 in
  let nruns = ref 0 and run_accs = ref 0 in
  let hist = Array.make 8 0 in
  List.iter
    (fun (base, insns) ->
      let n = Array.length insns in
      for e = 0 to n - 1 do
        let entry = base + (4 * e) in
        let fmask, mmask, s, el, tcls = scan_superblock env insns ~e in
        bump (fun () -> stats.cs_eager_sb <- stats.cs_eager_sb + 1);
        Facts.add_mask facts ~entry fmask;
        let gmask, preds = guard_scan ~ddc_dead insns ~e ~fmask in
        Facts.add_guarded facts ~entry gmask preds;
        guarded := !guarded + Facts.popcount gmask;
        let cert = cert_scan insns ~entry ~e ~gmask ~preds ~tcls in
        Facts.add_cert facts ~entry cert;
        hist.(cert_bucket cert.Facts.ct_prefix) <-
          hist.(cert_bucket cert.Facts.ct_prefix) + 1;
        if cert.Facts.ct_prefix > 0 then begin
          incr cert_sb;
          cert_insns := !cert_insns + cert.Facts.ct_prefix;
          nruns := !nruns + Array.length cert.Facts.ct_runs;
          Array.iter
            (fun r -> run_accs := !run_accs + 1 + Array.length r.Facts.ar_tail)
            cert.Facts.ct_runs
        end;
        if mmask <> 0 then begin
          let cur =
            match Hashtbl.find_opt must_tbl entry with Some m -> m | None -> 0
          in
          Hashtbl.replace must_tbl entry (cur lor mmask)
        end;
        sites := !sites + s;
        elided := !elided + el
      done)
    regions;
  { sc_facts = facts; sc_must = must_tbl; sc_sites = !sites;
    sc_elided = !elided; sc_guarded = !guarded;
    sc_cert_sb = !cert_sb; sc_cert_insns = !cert_insns;
    sc_runs = !nruns; sc_run_accesses = !run_accs; sc_cert_hist = hist }

let facts_of_code ?ddc ?pcc_may regions =
  (scan_code ?ddc ?pcc_may regions).sc_facts

(* Lazy variant: a pull-through [Facts.t] whose per-entry fixpoint runs the
   first time the block engine decodes that superblock ([Facts.mask] at
   build time), so a process only pays analysis for code it executes. The
   masks are exactly [scan_code]'s — same environment, same straight-line
   scan — the resolver just picks out one entry. One scan serves both
   tiers: the guarded pre-scan reuses the fixpoint's unconditional mask
   (guard bits must exclude everything tier 1 already proved) instead of
   re-running the fixpoint the way the old two-resolver split did, so
   [stats.cs_lazy_gsb] — extra fixpoints charged to the guarded tier —
   stays 0 on the block-build path. Resolved entries are memoized inside
   the table, so re-decodes (context switch / generation flushes) and
   cached re-execs are hash lookups. *)
let lazy_facts_of_code ?ddc ?pcc_may regions =
  let env = make_env ?ddc ?pcc_may () in
  let ddc_dead = env.e_ddc.a_tag = No in
  let resolve entry =
    let rec find = function
      | [] -> (0, Facts.no_guard, Facts.no_cert)
      | (base, insns) :: rest ->
        if entry >= base
           && entry < base + (4 * Array.length insns)
           && (entry - base) land 3 = 0
        then begin
          let e = (entry - base) / 4 in
          let fmask, _, _, _, tcls = scan_superblock env insns ~e in
          let (gmask, preds) as guard = guard_scan ~ddc_dead insns ~e ~fmask in
          let cert = cert_scan insns ~entry ~e ~gmask ~preds ~tcls in
          bump (fun () ->
              stats.cs_lazy_sb <- stats.cs_lazy_sb + 1;
              let p = cert.Facts.ct_prefix in
              lazy_cert_hist.(cert_bucket p) <-
                lazy_cert_hist.(cert_bucket p) + 1;
              if p > 0 then begin
                stats.cs_cert_sb <- stats.cs_cert_sb + 1;
                stats.cs_cert_insns <- stats.cs_cert_insns + p
              end);
          (fmask, guard, cert)
        end
        else find rest
    in
    find regions
  in
  Facts.create_lazy ~resolve ()

(* --- Image-keyed fact cache -------------------------------------------------

   [Sobj.image] values are immutable and shared across kernels and execs
   (the bench installs one image into many kernels; repeated execs of the
   same path reuse the vfs's image), so analysis results are memoized per
   image identity plus everything the facts depend on: the initial DDC and
   the PCC permission envelope (facts are DDC- and PCC-sensitive), the
   analysis mode, and the linked code layout (defensive: identical layout
   is what makes entry-pc-keyed facts transferable between execs; the
   linker is deterministic per image + ABI, so this key component only
   guards against that assumption breaking). The cached table is shared by
   reference — safe because fact tables are append-only (lazy memoization
   never changes a mask already handed out) and [Bbcache.set_facts] guards
   by physical equality, so two processes exec'ing the same image stop
   thrashing each other's block cache. *)

type fact_mode = Eager | Lazy_sb

type fact_key = {
  fk_img : int;                  (* Sobj.image_id *)
  fk_ddc : Cap.t;
  fk_pcc_may : Perms.t;
  fk_lazy : bool;
  fk_layout : (int * int) list;  (* (base, instruction count) per region *)
}

let fact_cache : (fact_key, Facts.t) Hashtbl.t = Hashtbl.create 16

(* Interprocedural-analysis results for one image: the per-function
   summary table plus the counters --analysis-stats reports. Cached
   alongside the fact tables under the same key discipline, one step
   lazier: the thunk only runs if something actually asks for the stats
   (or the summaries), so plain execution never pays for CFG recovery. *)
type ipa = {
  ip_funcs : int;                     (* functions summarized *)
  ip_iters : int;                     (* outer worklist iterations *)
  ip_checks : int;                    (* flow-level check sites swept *)
  ip_proved : int;                    (* ... statically provable *)
  ip_sums : (int, summary) Hashtbl.t; (* function root -> summary *)
}

(* Keyed by the fact key plus the linkage view (entry points and GOT map)
   the CFG was recovered from — defensively, like fk_layout: the linker is
   deterministic per image + ABI. *)
let sum_cache
    : (fact_key * int list * (int * int) list, ipa Lazy.t) Hashtbl.t =
  Hashtbl.create 16

let clear_fact_cache () =
  Mutex.protect cache_lock (fun () ->
      Hashtbl.reset fact_cache;
      Hashtbl.reset sum_cache)

let cached_facts ~image ~ddc ~pcc_may ~mode regions =
  let key =
    { fk_img = Cheri_rtld.Sobj.image_id image;
      fk_ddc = ddc;
      fk_pcc_may = pcc_may;
      fk_lazy = (mode = Lazy_sb);
      fk_layout = List.map (fun (b, insns) -> (b, Array.length insns)) regions }
  in
  Mutex.protect cache_lock (fun () ->
      match Hashtbl.find_opt fact_cache key with
      | Some f ->
        bump (fun () -> stats.cs_hits <- stats.cs_hits + 1);
        f
      | None ->
        bump (fun () -> stats.cs_misses <- stats.cs_misses + 1);
        let f =
          match mode with
          | Eager -> facts_of_code ~ddc ~pcc_may regions
          | Lazy_sb -> lazy_facts_of_code ~ddc ~pcc_may regions
        in
        Hashtbl.add fact_cache key f;
        f)

let must_traps sc ~entry ~index =
  index >= 0 && index <= Facts.max_index
  && (match Hashtbl.find_opt sc.sc_must entry with
      | Some m -> (m lsr index) land 1 = 1
      | None -> false)

(* --- Whole-image verification ---------------------------------------------- *)

type severity = Must | Warn

type diag = {
  g_pc : int;
  g_block : int;   (* containing basic-block entry *)
  g_fn : int;      (* containing function entry *)
  g_insn : string; (* Insn.to_string of the flagged instruction *)
  g_kind : string;
  g_sev : severity;
  g_msg : string;
}

let pp_diag d =
  Printf.sprintf "0x%06x: %s: %s: %s  [%s | fn 0x%x block 0x%x]" d.g_pc
    (match d.g_sev with Must -> "must-trap" | Warn -> "may-trap")
    d.g_kind d.g_msg d.g_insn d.g_fn d.g_block

type report = {
  r_diags : diag list;
  r_funcs : int;
  r_blocks : int;
  r_sites : int;     (* elidable check sites (superblock scan) *)
  r_elided : int;    (* checks discharged *)
  r_guarded : int;   (* further checks elidable under entry guards *)
  r_sb : int;        (* superblock entries with at least one fact *)
  r_flow_sites : int;  (* check sites swept by the interprocedural pass *)
  r_flow_elided : int; (* ... discharged on the stabilized flow states *)
  r_iters : int;     (* outer summary-worklist iterations *)
  r_cert_sb : int;   (* tier-3: superblocks with a trap-freedom certificate *)
  r_cert_insns : int;  (* ... total certified-prefix instructions *)
  r_runs : int;        (* ... access runs *)
  r_run_accesses : int; (* ... accesses covered by runs *)
  r_cert_hist : int array; (* prefix-length histogram (see sc_cert_hist) *)
}

let kind_msg kind prov =
  let p =
    match prov with
    | Lint.Unknown | Lint.Bot -> ""
    | p -> Printf.sprintf " (%s capability)" (Lint.prov_name p)
  in
  (match kind with
   | K_cap Cap.Tag_violation -> "use of untagged capability"
   | K_cap Cap.Seal_violation -> "operation on sealed capability"
   | K_cap (Cap.Permit_violation p) ->
     Printf.sprintf "missing %s permission" (Perms.to_string p)
   | K_cap Cap.Bounds_violation -> "access provably out of bounds"
   | K_cap Cap.Length_violation -> "negative bounds length"
   | K_cap Cap.Monotonicity_violation -> "bounds derivation would widen rights"
   | K_cap Cap.Representability_violation -> "exact bounds not representable"
   | K_cap Cap.Alignment_violation -> "provably misaligned access"
   | K_jump_align -> "jump to misaligned target"
   | K_div -> "division traps (zero divisor or INT_MIN/-1)")
  ^ p

(* --- Path-sensitive branch refinement ---------------------------------------

   Block-local provenance of branch operands: which GPR currently holds
   the result of a [CGetTag]/[CGetLen] on some capability register, or of
   an unsigned bounds compare [Sltu k, len] against such a length. At the
   block's conditional terminator, each successor edge learns what the
   guard decided — the taken edge of [bnez (cgettag cb)] flows a state in
   which cb is tagged, the fall-through one in which it is not — and
   edges whose condition contradicts the abstract state are pruned as
   infeasible. *)

type borigin =
  | BTag of int           (* gpr = tag bit of creg *)
  | BLen of int           (* gpr = length of creg *)
  | BLtLen of int * int   (* gpr = (k <u length of creg), k >= 0 *)

let kill_borigin orig cd =
  let stale =
    Hashtbl.fold
      (fun r o acc ->
        match o with
        | BTag c | BLen c | BLtLen (_, c) -> if c = cd then r :: acc else acc)
      orig []
  in
  List.iter (Hashtbl.remove orig) stale

(* Learn tag(cb) = [expect]; false = the edge is infeasible. [a_conc]
   always pins the tag exactly ([of_cap]), so a contradicting refinement
   can only meet a [Maybe], where a_conc is already None. *)
let tag_refine st cb expect =
  let a = getc st cb in
  match a.a_tag, expect with
  | Yes, false | No, true -> false
  | _ ->
    refinec st cb
      (if expect then { a with a_tag = Yes } else { a with a_tag = No });
    true

(* Learn (k <u length cb) = true: length >= k+1, and with the exact base
   offset bo = addr - base the window [-bo, k+1-bo) is provably in
   bounds (lengths are never negative, so unsigned > is signed > here). *)
let ltlen_true st cb k =
  let a = getc st cb in
  match a.a_boff with
  | Some bo ->
    let lo = -bo and hi = k + 1 - bo in
    let win =
      match a.a_win with
      | Some (l, h) -> Some (min l lo, max h hi)
      | None -> Some (lo, hi)
    in
    refinec st cb { a with a_win = win }
  | None -> ()

(* Learn (k <u length cb) = false: length <= k, so top - addr <= k - bo. *)
let ltlen_false st cb k =
  let a = getc st cb in
  match a.a_boff with
  | Some bo ->
    let h = k - bo in
    let topoff =
      match a.a_topoff with Some t -> Some (min t h) | None -> Some h
    in
    refinec st cb { a with a_topoff = topoff }
  | None -> ()

(* Refine [st] (a private copy) along one edge of conditional terminator
   [tm]; [taken] selects the branch-taken edge. Returns false when the
   edge is infeasible under the abstract state. *)
let refine_edge st orig (tm : Insn.t) ~taken =
  let feas = ref true in
  let byorig r = Hashtbl.find_opt orig r in
  (match tm with
   | Insn.Beq (rs, rt, _) | Insn.Bne (rs, rt, _) ->
     let eq = match tm with Insn.Beq _ -> taken | _ -> not taken in
     (match getg st rs, getg st rt with
      | Cst a, Cst b -> if (a = b) <> eq then feas := false
      | _ -> ());
     if !feas then begin
       if eq then
         (match getg st rs, getg st rt with
          | Cst k, Any -> setg st rt (Cst k)
          | Any, Cst k -> setg st rs (Cst k)
          | _ -> ());
       let against_zero r other =
         if getg st other = Cst 0 then
           match byorig r with
           | Some (BTag cb) ->
             (* value = 0 <-> untagged *)
             if not (tag_refine st cb (not eq)) then feas := false
           | Some (BLtLen (k, cb)) ->
             if eq then ltlen_false st cb k else ltlen_true st cb k
           | _ -> ()
       in
       against_zero rs rt;
       against_zero rt rs
     end
   | Insn.Blez (rs, _) | Insn.Bgtz (rs, _) | Insn.Bltz (rs, _)
   | Insn.Bgez (rs, _) ->
     let holds = taken in
     (match getg st rs with
      | Cst v ->
        let c =
          match tm with
          | Insn.Blez _ -> v <= 0
          | Insn.Bgtz _ -> v > 0
          | Insn.Bltz _ -> v < 0
          | _ -> v >= 0
        in
        if c <> holds then feas := false
      | Any -> ());
     if !feas then
       (match byorig rs with
        | Some (BTag cb) ->
          (* tag in {0, 1} *)
          (match tm with
           | Insn.Blez _ ->
             if not (tag_refine st cb (not holds)) then feas := false
           | Insn.Bgtz _ -> if not (tag_refine st cb holds) then feas := false
           | Insn.Bltz _ -> if holds then feas := false
           | Insn.Bgez _ -> if not holds then feas := false
           | _ -> ())
        | Some (BLtLen (k, cb)) ->
          (* compare result in {0, 1} *)
          (match tm with
           | Insn.Blez _ ->
             if holds then ltlen_false st cb k else ltlen_true st cb k
           | Insn.Bgtz _ ->
             if holds then ltlen_true st cb k else ltlen_false st cb k
           | Insn.Bltz _ -> if holds then feas := false
           | Insn.Bgez _ -> if not holds then feas := false
           | _ -> ())
        | _ -> ())
   | _ -> ());
  !feas

(* Flow [st] through the straight-line body of [b], tracking branch-operand
   origins; returns (origins, terminator). [on_insn] sees every
   non-terminator verdict (diagnostics, counters). *)
let flow_block env ?(on_insn = fun _ _ _ -> ()) st (b : Cfg.bb) =
  let orig : (int, borigin) Hashtbl.t = Hashtbl.create 4 in
  let term = ref None in
  Array.iteri
    (fun i insn ->
      if Insn.is_terminator insn then term := Some insn
      else begin
        (* Compute the defined GPR's new origin from the *pre*-state (Sltu
           reads may be overwritten by its own destination). *)
        let gorig =
          match insn with
          | Insn.CGetTag (rd, cb) when rd <> 0 -> Some (rd, Some (BTag cb))
          | Insn.CGetLen (rd, cb) when rd <> 0 -> Some (rd, Some (BLen cb))
          | Insn.Sltu (rd, rs, rt) when rd <> 0 ->
            (match getg st rs, Hashtbl.find_opt orig rt with
             | Cst k, Some (BLen cb) when k >= 0 ->
               Some (rd, Some (BLtLen (k, cb)))
             | _ -> Some (rd, None))
          | Insn.Move (rd, rs) when rd <> 0 ->
            Some (rd, Hashtbl.find_opt orig rs)
          | _ ->
            (match Insn.gpr_def insn with
             | Some rd when rd <> 0 -> Some (rd, None)
             | _ -> None)
        in
        let v = step_st env st insn in
        on_insn (b.Cfg.bb_entry + (4 * i)) insn v;
        (match Insn.creg_def insn with
         | Some cd -> kill_borigin orig cd
         | None -> ());
        (match gorig with
         | Some (rd, Some o) -> Hashtbl.replace orig rd o
         | Some (rd, None) -> Hashtbl.remove orig rd
         | None -> ())
      end)
    b.Cfg.bb_insns;
  (orig, !term)

(* Per-successor output states of a flowed block: ordinary edges get a
   refined copy (or are pruned as infeasible), call fall-through edges go
   through the callee's summary — or the old full clobber when the callee
   is unknown (Jalr, unresolved CJALR, Syscall, Rt). *)
let succ_outs ~sums (b : Cfg.bb) st orig term =
  let fall = b.Cfg.bb_entry + (4 * Array.length b.Cfg.bb_insns) in
  let cond_target =
    match term with
    | Some
        (Insn.Beq (_, _, t) | Insn.Bne (_, _, t) | Insn.Blez (_, t)
        | Insn.Bgtz (_, t) | Insn.Bltz (_, t) | Insn.Bgez (_, t))
      when t <> fall ->
      Some t
    | _ -> None
  in
  List.filter_map
    (fun s ->
      match s with
      | Cfg.Seq t ->
        let out = copy_st st in
        let ok =
          match cond_target, term with
          | Some tgt, Some tm -> refine_edge out orig tm ~taken:(t = tgt)
          | _ -> true
        in
        if ok then Some (t, out) else None
      | Cfg.Ret_of t ->
        let out =
          match b.Cfg.bb_calls with
          | [ callee ] ->
            (match Hashtbl.find_opt sums callee with
             | Some su -> apply_summary st su
             | None -> Some (clobber_after_call st))
          | _ -> Some (clobber_after_call st)
        in
        Option.map (fun o -> (t, o)) out)
    b.Cfg.bb_succs

type fn_result = {
  fr_sum : summary;
  fr_sites : int;   (* flow-level elidable check sites swept *)
  fr_elided : int;  (* ... discharged on the stabilized states *)
}

(* Fixpoint + post-convergence sweep for one function. [sums] supplies
   callee summaries (an empty table degrades every call to the clobber).
   Diagnostics and counters are only collected after the block input
   states have stabilized: states rise monotonically during iteration, so
   a must-trap provable from an early state can be invalidated by a later
   join. The sweep also recomputes the function's own summary: exit
   states join over return terminators ([jr ra] / [cjr cra]) and over
   summary-composed tail transfers (jumps and branches into other
   function roots); returns through any other register poison the
   summary (the exit state would not describe where control goes). *)
let analyze_fn ?emit env ~sums cfg root members =
  let in_states : (int, st) Hashtbl.t = Hashtbl.create 16 in
  let join_counts : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let member = Hashtbl.create 16 in
  List.iter (fun b -> Hashtbl.replace member b ()) members;
  let entry_st =
    let st = fresh_st env in
    st.c.(Reg.csp) <- { top_acap with a_prov = Lint.Stack };
    st.c.(Reg.cgp) <- { top_acap with a_prov = Lint.Global };
    st.c.(Reg.cra) <- { top_acap with a_prov = Lint.Func };
    st
  in
  Hashtbl.replace in_states root entry_st;
  let work = Queue.create () in
  Queue.add root work;
  let steps = ref 0 in
  while (not (Queue.is_empty work)) && !steps < 20_000 do
    incr steps;
    let e = Queue.pop work in
    match Cfg.block_of cfg e, Hashtbl.find_opt in_states e with
    | Some b, Some ist ->
      let st = copy_st ist in
      let orig, term = flow_block env st b in
      List.iter
        (fun (t, out) ->
          if Hashtbl.mem member t then
            match Hashtbl.find_opt in_states t with
            | None ->
              Hashtbl.replace in_states t (copy_st out);
              Queue.add t work
            | Some cur ->
              let jc =
                match Hashtbl.find_opt join_counts t with
                | Some n -> n
                | None -> 0
              in
              let joined, changed = join_st ~widen:(jc > 8) cur out in
              if changed then begin
                Hashtbl.replace in_states t joined;
                Hashtbl.replace join_counts t (jc + 1);
                Queue.add t work
              end)
        (succ_outs ~sums b st orig term)
    | _ -> ()
  done;
  (* Post-convergence sweep: diagnostics, counters, and this function's
     summary (write effects + exit state). *)
  let sum = su_bottom () in
  let wcreg r = if r <> 0 then sum.su_writes <- sum.su_writes lor (1 lsl r) in
  let wgpr r = if r <> 0 then sum.su_gwrites <- sum.su_gwrites lor (1 lsl r) in
  let clobber_effect () =
    sum.su_writes <- sum.su_writes lor (lnot (1 lsl Reg.csp) land 0xffff_fffe);
    sum.su_gwrites <- sum.su_gwrites lor 0xffff_fffe;
    sum.su_stores <- true
  in
  let callee_effect t =
    match Hashtbl.find_opt sums t with
    | Some su when not su.su_poison ->
      sum.su_writes <- sum.su_writes lor su.su_writes;
      sum.su_gwrites <- sum.su_gwrites lor su.su_gwrites;
      if su.su_stores then sum.su_stores <- true
    | _ -> clobber_effect ()
  in
  let add_exit stx =
    match sum.su_exit with
    | None -> sum.su_exit <- Some (copy_st stx)
    | Some cur ->
      sum.su_exit_joins <- sum.su_exit_joins + 1;
      let j, _ = join_st ~widen:(sum.su_exit_joins > 8) cur stx in
      sum.su_exit <- Some j
  in
  let sites = ref 0 and elided = ref 0 in
  List.iter
    (fun e ->
      match Cfg.block_of cfg e with
      | None -> ()
      | Some b ->
        (* Syntactic write effects accumulate over every member block,
           reachable or not — the summary must cover any path a caller
           could exercise. *)
        Array.iter
          (fun insn ->
            (match Insn.creg_def insn with Some cd -> wcreg cd | None -> ());
            (match Insn.gpr_def insn with Some rd -> wgpr rd | None -> ());
            match insn with
            | Insn.Store _ | Insn.CStore _ | Insn.CSC _ ->
              sum.su_stores <- true
            | _ -> ())
          b.Cfg.bb_insns;
        let has_ret_of =
          List.exists
            (function Cfg.Ret_of _ -> true | Cfg.Seq _ -> false)
            b.Cfg.bb_succs
        in
        if has_ret_of && b.Cfg.bb_calls = [] then clobber_effect ()
        else List.iter callee_effect b.Cfg.bb_calls;
        (match Hashtbl.find_opt in_states e with
         | None -> ()
         | Some ist ->
           let st = copy_st ist in
           let on_insn pc insn v =
             if v.av_site then incr sites;
             if v.av_elide then incr elided;
             match emit, v.av_must with
             | Some emit, Some (k, p) ->
               emit ~fn:root ~block:e ~pc ~sev:Must ~kind:k ~prov:p insn
             | _ -> ()
           in
           let orig, term = flow_block env ~on_insn st b in
           (match term, emit with
            | Some tm, Some emit ->
              let pc = b.Cfg.bb_entry + (4 * (Array.length b.Cfg.bb_insns - 1)) in
              (match term_verdict st tm with
               | `Must (k, p) ->
                 emit ~fn:root ~block:e ~pc ~sev:Must ~kind:k ~prov:p tm
               | `Warn (k, p) ->
                 emit ~fn:root ~block:e ~pc ~sev:Warn ~kind:k ~prov:p tm
               | `None -> ())
            | _ -> ());
           (match term with
            | Some (Insn.Jr r) when r = Reg.ra -> add_exit st
            | Some (Insn.CJR c) when c = Reg.cra -> add_exit st
            | Some (Insn.Jr _ | Insn.CJR _) -> sum.su_poison <- true
            | Some (Insn.J t) when b.Cfg.bb_calls = [ t ] ->
              (* Tail call: this function's exit is the callee's exit
                 composed with the transfer state. *)
              (match Hashtbl.find_opt sums t with
               | Some su -> Option.iter add_exit (apply_summary st su)
               | None -> add_exit (clobber_after_call st))
            | _ -> ());
           (* Conditional or fall-through transfers into another function
              root are tail transfers too. *)
           List.iter
             (fun (t, out) ->
               if not (Hashtbl.mem member t) then
                 match Hashtbl.find_opt sums t with
                 | Some su -> Option.iter add_exit (apply_summary out su)
                 | None -> add_exit (clobber_after_call out))
             (succ_outs ~sums b st orig term)))
    members;
  { fr_sum = sum; fr_sites = !sites; fr_elided = !elided }

(* Whole-image summary fixpoint: bottom-start ascending worklist over
   function roots, re-queuing callers (and tail-callers) whenever a
   summary grows. The iteration budget is a soundness backstop, not a
   tuning knob: a truncated ascent is not a fixpoint, so overrunning it
   poisons every summary back to the pessimistic clobber. *)
let summarize env cfg =
  let sums : (int, summary) Hashtbl.t = Hashtbl.create 16 in
  List.iter (fun (root, _) -> Hashtbl.replace sums root (su_bottom ()))
    cfg.Cfg.funcs;
  let callers : (int, int list) Hashtbl.t = Hashtbl.create 16 in
  let add_caller callee caller =
    let cur =
      match Hashtbl.find_opt callers callee with Some l -> l | None -> []
    in
    if not (List.mem caller cur) then
      Hashtbl.replace callers callee (caller :: cur)
  in
  List.iter
    (fun (root, members) ->
      List.iter
        (fun e ->
          match Cfg.block_of cfg e with
          | None -> ()
          | Some b ->
            List.iter
              (fun t -> if Hashtbl.mem sums t then add_caller t root)
              b.Cfg.bb_calls;
            List.iter
              (function
                | Cfg.Seq t when t <> root && Hashtbl.mem sums t ->
                  add_caller t root
                | _ -> ())
              b.Cfg.bb_succs)
        members)
    cfg.Cfg.funcs;
  let work = Queue.create () in
  let queued = Hashtbl.create 16 in
  let enqueue r =
    if not (Hashtbl.mem queued r) then begin
      Hashtbl.replace queued r ();
      Queue.add r work
    end
  in
  List.iter (fun (root, _) -> enqueue root) cfg.Cfg.funcs;
  let nfuncs = List.length cfg.Cfg.funcs in
  let budget = ref (20 * max 1 nfuncs) in
  let iters = ref 0 in
  let overflow = ref false in
  while not (Queue.is_empty work) do
    if !budget <= 0 then begin
      overflow := true;
      Queue.clear work
    end
    else begin
      decr budget;
      incr iters;
      let root = Queue.pop work in
      Hashtbl.remove queued root;
      match List.assoc_opt root cfg.Cfg.funcs with
      | None -> ()
      | Some members ->
        let r = analyze_fn env ~sums cfg root members in
        let old = Hashtbl.find sums root in
        if join_summary old r.fr_sum then
          List.iter enqueue
            (match Hashtbl.find_opt callers root with
             | Some l -> l
             | None -> [])
    end
  done;
  if !overflow then Hashtbl.iter (fun _ su -> su.su_poison <- true) sums;
  stats.cs_funcs <- stats.cs_funcs + nfuncs;
  stats.cs_iters <- stats.cs_iters + !iters;
  (sums, !iters)

let verify ?ddc ?pcc_may ?(got = []) ~entries regions =
  let env = make_env ?ddc ?pcc_may () in
  let cfg = Cfg.build ~entries ~got regions in
  let sums, iters = summarize env cfg in
  let seen = Hashtbl.create 64 in
  let diags = ref [] in
  let emit ~fn ~block ~pc ~sev ~kind ~prov insn =
    let kname = kind_name kind in
    let key = (pc, kname, sev) in
    if not (Hashtbl.mem seen key) then begin
      Hashtbl.replace seen key ();
      diags :=
        { g_pc = pc; g_block = block; g_fn = fn;
          g_insn = Insn.to_string insn; g_kind = kname; g_sev = sev;
          g_msg = kind_msg kind prov }
        :: !diags
    end
  in
  let flow_sites = ref 0 and flow_elided = ref 0 in
  List.iter
    (fun (root, members) ->
      let r = analyze_fn ~emit env ~sums cfg root members in
      flow_sites := !flow_sites + r.fr_sites;
      flow_elided := !flow_elided + r.fr_elided)
    cfg.Cfg.funcs;
  let sc = scan_code ?ddc ?pcc_may regions in
  let diags =
    List.sort
      (fun a b ->
        match compare a.g_pc b.g_pc with 0 -> compare a.g_kind b.g_kind | c -> c)
      !diags
  in
  { r_diags = diags;
    r_funcs = List.length cfg.Cfg.funcs;
    r_blocks = List.length cfg.Cfg.order;
    r_sites = sc.sc_sites;
    r_elided = sc.sc_elided;
    r_guarded = sc.sc_guarded;
    r_sb = Facts.blocks sc.sc_facts;
    r_flow_sites = !flow_sites;
    r_flow_elided = !flow_elided;
    r_iters = iters;
    r_cert_sb = sc.sc_cert_sb;
    r_cert_insns = sc.sc_cert_insns;
    r_runs = sc.sc_runs;
    r_run_accesses = sc.sc_run_accesses;
    r_cert_hist = sc.sc_cert_hist }

(* --- Cached interprocedural results + the kernel fact provider ------------- *)

let cached_ipa ~image ~ddc ~pcc_may ~entries ~got regions =
  let key =
    ( { fk_img = Cheri_rtld.Sobj.image_id image;
        fk_ddc = ddc;
        fk_pcc_may = pcc_may;
        fk_lazy = false;
        fk_layout =
          List.map (fun (b, insns) -> (b, Array.length insns)) regions },
      entries,
      got )
  in
  Mutex.protect cache_lock (fun () ->
      match Hashtbl.find_opt sum_cache key with
      | Some l -> l
      | None ->
        let l =
          lazy
            (let env = make_env ~ddc ~pcc_may () in
             let cfg = Cfg.build ~entries ~got regions in
             let sums, iters = summarize env cfg in
             let checks = ref 0 and proved = ref 0 in
             List.iter
               (fun (root, members) ->
                 let r = analyze_fn env ~sums cfg root members in
                 checks := !checks + r.fr_sites;
                 proved := !proved + r.fr_elided)
               cfg.Cfg.funcs;
             { ip_funcs = List.length cfg.Cfg.funcs; ip_iters = iters;
               ip_checks = !checks; ip_proved = !proved; ip_sums = sums })
        in
        Hashtbl.add sum_cache key l;
        l)

(* Force and aggregate every cached interprocedural result (what
   --analysis-stats reports after a run). Forcing happens under
   [cache_lock]: OCaml 5 [Lazy.t] is not domain-safe (a concurrent force
   raises [RacyLazy]), so the registered thunks are only ever forced
   serialized here. The provider itself never forces. *)
let ipa_totals () =
  Mutex.protect cache_lock (fun () ->
      Hashtbl.fold
        (fun _ l (f, i, c, p) ->
          let ipa = Lazy.force l in
          (f + ipa.ip_funcs, i + ipa.ip_iters, c + ipa.ip_checks,
           p + ipa.ip_proved))
        sum_cache (0, 0, 0, 0))

(* The standard kernel fact provider (Kstate.config.fact_provider):
   image-cached, user-PCC permission envelope (user code can never hold
   SYSTEM_REGS — the kernel's user root is derived without it — which is
   what makes a concrete DDC sound: CWriteDDC must trap). Lazy by default;
   [Eager] pays the whole image up front, which only wins for processes
   that execute most of their code. The interprocedural summary table is
   registered per image as well, unforced: it feeds --analysis-stats and
   verification, while the dynamic elision path rests on the two fact
   tiers alone (guards are self-validating at block entry). *)
let provider ?(mode = Lazy_sb) () =
  let pcc_may = Perms.diff Perms.all Perms.system_regs in
  fun ~image ~ddc ~entries ~got regions ->
    ignore (cached_ipa ~image ~ddc ~pcc_may ~entries ~got regions);
    cached_facts ~image ~ddc ~pcc_may ~mode regions
