(* Per-address-space page tables with demand paging, copy-on-write and
   swap integration.

   [translate] is the hot path installed into the CPU; it raises
   [Trap.Page_fault] for anything it cannot satisfy directly, and the
   kernel then calls [handle_fault] to demand-page / swap-in / break COW,
   retrying the instruction on success. *)

module Tagmem = Cheri_tagmem.Tagmem
module Phys = Cheri_tagmem.Phys
module Trap = Cheri_isa.Trap

type state =
  | Lazy                   (* zero-fill on first touch *)
  | Present of int         (* resident, frame number *)
  | Swapped of int         (* swap slot id *)

type entry = {
  mutable state : state;
  mutable prot : Prot.t;
  mutable cow : bool;      (* write must copy first *)
  mutable accessed : bool; (* for the clock eviction algorithm *)
}

type t = {
  table : (int, entry) Hashtbl.t;   (* vpn -> entry *)
  phys : Phys.t;
  swap : Swap.t;
  mutable root : Cheri_cap.Cap.t;   (* rederivation root for swap-in *)
  mutable faults : int;
  mutable cow_copies : int;
  (* Bumped whenever mappings are removed or re-protected; the block-cache
     engine compares it to decide when decoded blocks may be stale. *)
  mutable generation : int;
  (* Bounded log of the address ranges behind recent generation bumps,
     newest first, each stamped with the generation it produced. Lets
     consumers holding artifacts stamped with an older generation decide
     whether the intervening mutations actually touched the ranges they
     depend on (check-elision facts survive a heap-page munmap this way).
     Bounded: when the window no longer covers a consumer's generation
     gap, [mutations_since] answers None and the consumer must assume the
     worst. *)
  mutable mut_log : (int * int * int) list;   (* (generation, vaddr, len) *)
}

let mut_log_max = 32

let page_size = Phys.page_size
let vpn_of v = v lsr Phys.page_shift

let create ~phys ~swap ~root =
  { table = Hashtbl.create 256; phys; swap; root;
    faults = 0; cow_copies = 0; generation = 0; mut_log = [] }

(* Record one range mutation: bump the generation and remember the range
   (bounded window). *)
let log_mutation t ~vaddr ~len =
  t.generation <- t.generation + 1;
  let log = (t.generation, vaddr, len) :: t.mut_log in
  t.mut_log <-
    (if List.length log > mut_log_max then List.filteri (fun i _ -> i < mut_log_max) log
     else log)

(* The ranges mutated since generation [gen], if the log window still
   covers every bump in between; None means "unknown, assume anything
   changed". *)
let mutations_since t ~gen =
  let expected = t.generation - gen in
  if expected <= 0 then Some []
  else begin
    let got = List.filter (fun (g, _, _) -> g > gen) t.mut_log in
    if List.length got = expected then
      Some (List.map (fun (_, v, l) -> (v, l)) got)
    else None
  end

let entry_count t = Hashtbl.length t.table
let fault_count t = t.faults
let generation t = t.generation

let find t vaddr = Hashtbl.find_opt t.table (vpn_of vaddr)

(* The physical tagged memory this pmap's frames live in. *)
let mem t = Phys.mem t.phys

(* Install a range of lazy (zero-fill) pages. *)
let enter_range t ~vaddr ~len ~prot =
  let first = vpn_of vaddr and last = vpn_of (vaddr + len - 1) in
  for vpn = first to last do
    Hashtbl.replace t.table vpn
      { state = Lazy; prot; cow = false; accessed = false }
  done

(* Map an existing frame (shared memory, kernel-prepared pages). *)
let enter_frame t ~vaddr ~frame ~prot ~cow =
  Hashtbl.replace t.table (vpn_of vaddr)
    { state = Present frame; prot; cow; accessed = false }

let protect_range t ~vaddr ~len ~prot =
  log_mutation t ~vaddr ~len;
  let first = vpn_of vaddr and last = vpn_of (vaddr + len - 1) in
  for vpn = first to last do
    match Hashtbl.find_opt t.table vpn with
    | Some e -> e.prot <- prot
    | None -> ()
  done

let remove_range t ~vaddr ~len =
  log_mutation t ~vaddr ~len;
  let first = vpn_of vaddr and last = vpn_of (vaddr + len - 1) in
  for vpn = first to last do
    match Hashtbl.find_opt t.table vpn with
    | None -> ()
    | Some e ->
      (match e.state with
       | Present f -> Phys.decref t.phys f
       | Swapped id -> Swap.discard t.swap id
       | Lazy -> ());
      Hashtbl.remove t.table vpn
  done

(* Under memory pressure, evict resident pages of this space to swap and
   retry — the demand-paging path that makes the tag-scan/rederivation
   machinery load-bearing. *)
let rec alloc_frame_pressured t =
  try Phys.alloc_frame t.phys
  with Phys.Out_of_memory ->
    let evicted = evict_to_swap t ~n:64 in
    if evicted = 0 then raise Phys.Out_of_memory
    else alloc_frame_pressured t

and evict_to_swap t ~n =
  let candidates = ref [] in
  Hashtbl.iter
    (fun vpn e ->
      match e.state with
      | Present f when Phys.refcount t.phys f = 1 && not e.cow ->
        candidates := (e.accessed, vpn, e, f) :: !candidates
      | _ -> ())
    t.table;
  let sorted =
    List.sort
      (fun (a1, v1, _, _) (a2, v2, _, _) -> compare (a1, v1) (a2, v2))
      !candidates
  in
  let evicted = ref 0 in
  List.iter
    (fun (_, _, e, f) ->
      if !evicted < n then begin
        let id = Swap.swap_out t.swap (Phys.mem t.phys) ~pa:(Phys.frame_addr f) in
        Phys.decref t.phys f;
        e.state <- Swapped id;
        e.accessed <- false;
        incr evicted
      end)
    sorted;
  !evicted

let page_fault vaddr ~write ~exec =
  Trap.raise_trap (Trap.Page_fault { vaddr; write; exec })

(* Physical address of [vaddr] if its page is resident, without faulting,
   touching protection, or perturbing any statistic. Used by the allocator
   to sweep tags off freed objects (no tags can live on non-resident
   pages: zero-fill and swap-in both rewrite them). *)
let resident_pa t vaddr =
  match Hashtbl.find_opt t.table (vpn_of vaddr) with
  | Some { state = Present f; _ } ->
    Some (Phys.frame_addr f + (vaddr land (page_size - 1)))
  | _ -> None

(* Like [resident_pa], but safe for callers that intend to *mutate* tags
   (the allocator's freed-object sweeps): a resident COW page whose frame
   is still shared with another address space is privatized (tag-preserving
   copy) first, so the sweep cannot reach through the shared frame and
   strip capabilities out of the peer process. Lazy and swapped pages
   still answer None — no tags can live there. *)
let private_pa t vaddr =
  match Hashtbl.find_opt t.table (vpn_of vaddr) with
  | Some ({ state = Present f; _ } as e) ->
    if e.cow && Phys.refcount t.phys f > 1 then begin
      let nf = alloc_frame_pressured t in
      Tagmem.move (Phys.mem t.phys) ~src:(Phys.frame_addr f)
        ~dst:(Phys.frame_addr nf) ~len:page_size;
      Phys.decref t.phys f;
      e.state <- Present nf;
      e.cow <- false;
      t.cow_copies <- t.cow_copies + 1;
      Some (Phys.frame_addr nf + (vaddr land (page_size - 1)))
    end else begin
      e.cow <- false;   (* sole owner: drop the COW bit like handle_fault *)
      Some (Phys.frame_addr f + (vaddr land (page_size - 1)))
    end
  | _ -> None

(* Hot path: virtual -> physical, raising on anything needing the kernel.
   Uses [Hashtbl.find] rather than [find_opt] to keep the hit path
   allocation-free. *)
let translate t vaddr ~write ~exec =
  match Hashtbl.find t.table (vpn_of vaddr) with
  | exception Not_found -> page_fault vaddr ~write ~exec
  | e ->
    (match e.state with
     | Present f ->
       if (write && not e.prot.Prot.write)
          || ((not write) && not e.prot.Prot.read)
          || (exec && not e.prot.Prot.exec)
       then page_fault vaddr ~write ~exec
       else if write && e.cow then page_fault vaddr ~write ~exec
       else begin
         e.accessed <- true;
         Phys.frame_addr f + (vaddr land (page_size - 1))
       end
     | Lazy | Swapped _ -> page_fault vaddr ~write ~exec)

type fault_result =
  | Handled           (* retry the instruction *)
  | Bad_access        (* protection violation: deliver SIGSEGV *)
  | Not_mapped        (* no mapping at all: deliver SIGSEGV *)

(* Service a fault raised by [translate]. *)
let handle_fault t ~vaddr ~write ~exec ?(on_rederive = fun _ -> ()) () =
  t.faults <- t.faults + 1;
  match Hashtbl.find_opt t.table (vpn_of vaddr) with
  | None -> Not_mapped
  | Some e ->
    if (write && not e.prot.Prot.write)
       || ((not write) && not e.prot.Prot.read)
       || (exec && not e.prot.Prot.exec)
    then Bad_access
    else begin
      match e.state with
      | Lazy ->
        e.state <- Present (alloc_frame_pressured t);
        Handled
      | Swapped id ->
        let f = alloc_frame_pressured t in
        Swap.swap_in t.swap (Phys.mem t.phys) ~id ~pa:(Phys.frame_addr f)
          ~root:t.root ~on_rederive ();
        e.state <- Present f;
        Handled
      | Present f when write && e.cow ->
        if Phys.refcount t.phys f = 1 then begin
          (* Sole owner: just drop the COW bit. *)
          e.cow <- false;
          Handled
        end else begin
          let nf = alloc_frame_pressured t in
          (* The copy preserves tags: abstract capabilities survive COW. *)
          Tagmem.move (Phys.mem t.phys) ~src:(Phys.frame_addr f)
            ~dst:(Phys.frame_addr nf) ~len:page_size;
          Phys.decref t.phys f;
          e.state <- Present nf;
          e.cow <- false;
          t.cow_copies <- t.cow_copies + 1;
          Handled
        end
      | Present _ -> Handled (* racy retry; harmless in a simulator *)
    end

(* Iterate [f vaddr_of_page frame] over resident pages. *)
let iter_present t f =
  Hashtbl.iter
    (fun vpn e ->
      match e.state with
      | Present frame -> f (vpn * page_size) frame
      | Lazy | Swapped _ -> ())
    t.table

(* Evict up to [n] resident pages to swap (clock-ish: prefer unaccessed).
   Returns the number evicted. *)
let evict_pages t ~n = evict_to_swap t ~n

(* Clone this pmap for fork: resident private pages become COW in both
   parent and child; swapped pages are swapped in first (simplification). *)
let fork_into t child ~on_rederive =
  Hashtbl.iter
    (fun vpn e ->
      (match e.state with
       | Swapped id ->
         let f = Phys.alloc_frame t.phys in
         Swap.swap_in t.swap (Phys.mem t.phys) ~id ~pa:(Phys.frame_addr f)
           ~root:t.root ~on_rederive ();
         e.state <- Present f
       | Lazy | Present _ -> ());
      match e.state with
      | Present f ->
        Phys.incref t.phys f;
        e.cow <- e.cow || e.prot.Prot.write;
        Hashtbl.replace child.table vpn
          { state = Present f; prot = e.prot;
            cow = e.prot.Prot.write; accessed = false }
      | Lazy ->
        Hashtbl.replace child.table vpn
          { state = Lazy; prot = e.prot; cow = false; accessed = false }
      | Swapped _ -> assert false)
    t.table

(* Tear down all mappings (process exit / exec). Logged as a whole-address-
   space mutation: everything any consumer depends on is gone. *)
let destroy t =
  log_mutation t ~vaddr:0 ~len:max_int;
  Hashtbl.iter
    (fun _ e ->
      match e.state with
      | Present f -> Phys.decref t.phys f
      | Swapped id -> Swap.discard t.swap id
      | Lazy -> ())
    t.table;
  Hashtbl.reset t.table

(* Direct kernel access to a user page's physical address, faulting it in
   if needed. Returns None on protection violation / unmapped. *)
let kernel_touch t vaddr ~write =
  let rec go tries =
    if tries = 0 then None
    else
      match translate t vaddr ~write ~exec:false with
      | pa -> Some pa
      | exception Trap.Trap (Trap.Page_fault _) ->
        (match handle_fault t ~vaddr ~write ~exec:false () with
         | Handled -> go (tries - 1)
         | Bad_access | Not_mapped -> None)
      | exception Trap.Trap _ -> None
  in
  go 3
