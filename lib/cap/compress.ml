(* Bounds-compression model in the style of CHERI Concentrate.

   128-bit CHERI capabilities do not store full 64-bit base and top; they
   store a mantissa of [mw] bits and an exponent. Consequences modeled here,
   which the paper calls out as affecting allocators and stack layout
   (footnote 2: "large spans are aligned and sized at larger than byte
   granularity"):

   - [crrl len] is the representable rounded length: the smallest length
     >= [len] that a capability can have exactly.
   - [cram len] is the alignment mask a base must satisfy for a capability
     of length [len] to be exact.
   - a capability's cursor may wander some distance outside its bounds
     (the representable window) without losing its tag; beyond that window
     the tag is cleared.

   This is a faithful *model*, not a bit-exact re-encoding of ISAv7. *)

(* Mantissa width for the 128-bit format. *)
let mantissa_width = 14

(* Exponent needed to represent a span of [len] bytes. *)
let exponent_of_length len =
  if len < 0 then invalid_arg "Compress.exponent_of_length";
  let limit = 1 lsl (mantissa_width - 1) in
  if len < limit then 0
  else begin
    (* Smallest e such that len <= (limit lsl e). *)
    let rec go e span = if len <= span then e else go (e + 1) (span * 2) in
    go 1 (limit * 2)
  end

(* Alignment mask (as in the CRAM instruction): base land (cram len) must
   equal base for exact representation. *)
let cram len =
  let e = exponent_of_length len in
  lnot ((1 lsl e) - 1)

(* Representable rounded length (as in the CRRL instruction). *)
let crrl len =
  let e = exponent_of_length len in
  let mask = (1 lsl e) - 1 in
  let rounded = (len + mask) land lnot mask in
  (* Rounding may push the length across an exponent boundary; recompute. *)
  if exponent_of_length rounded = e then rounded
  else
    let mask = (1 lsl exponent_of_length rounded) - 1 in
    (len + mask) land lnot mask

(* Is [base, base+len) exactly representable? *)
let is_exact ~base ~len = crrl len = len && base land lnot (cram len) = 0

(* Pad a requested span out to a representable one. Returns (base, top).
   The padded span always contains the request.

   Aligning the base down grows the length, which can push it across an
   exponent boundary; the larger exponent then demands *coarser* base
   alignment, so one align-down/round-up pass is not enough. Iterate to a
   fixpoint: each step only lowers the base and raises the top, and the
   exponent is bounded, so the loop terminates (in practice in <= 2
   passes) with a span that satisfies [is_exact]. *)
let pad ~base ~top =
  let rec go pbase ptop =
    let len = ptop - pbase in
    let pbase' = pbase land cram len in
    let ptop' = pbase' + crrl (ptop - pbase') in
    if pbase' = pbase && ptop' = ptop then pbase, ptop
    else go pbase' ptop'
  in
  go base top

(* How far outside [base, top) the cursor may sit while remaining
   representable. Small objects get a fixed slack (one page); larger ones
   scale with the exponent, as compressed encodings do. *)
let representable_slack ~base ~top =
  let e = exponent_of_length (top - base) in
  if e = 0 then 4096 else 1 lsl (e + mantissa_width - 2)

let in_representable_window ~base ~top addr =
  let slack = representable_slack ~base ~top in
  addr >= base - slack && addr < top + slack
