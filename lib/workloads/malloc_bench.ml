(* Malloc-contention workload: cross-shard free traffic for the sharded
   allocator (docs/ALLOC.md).

   A root process populates a heap of mixed size classes (including the
   >4 KiB classes whose CRRL rounding is non-trivial), planting
   capabilities inside some objects so the ownership-change sweeps have
   real tags to clear. It then runs [generations] sequential fork/wait
   rounds. Each child inherits the root's heap metadata (COW pages plus
   the forked allocator state) under a *different* pid, hence a different
   affinity shard: its frees of inherited objects are remote frees,
   message-passed to the owning shard's queue; its first allocation then
   drains and adopts — exactly the snmalloc choreography the bench's
   per-shard stats gate on. The child's churn loop afterwards exercises
   dirty-slot reuse sweeps. The root prints one '#' per reaped child (the
   fleet latency marker) and finally re-reads and frees every object it
   kept — which only works if the children's frees stayed confined to
   their own COW frames.

   Everything is deterministic: sizes come from tiny LCG-ish formulas of
   the loop indices, and pids are allocated sequentially per machine. *)

let default_objs = 48
let default_generations = 6
let default_churn = 40

let contention_src ?(objs = default_objs) ?(generations = default_generations)
    ?(churn = default_churn) () =
  Printf.sprintf
    {|
    int main(int argc, char **argv) {
      char *objs[%d];
      int n = %d;
      int gens = %d;
      int churn = %d;
      int i;
      int gen;
      for (i = 0; i < n; i = i + 1) {
        int sz = 16 + ((i * 53) %% 1200);
        if (i %% 11 == 0) sz = 5000 + ((i * 97) %% 9000);
        char *o = malloc(sz);
        o[0] = i %% 113;
        o[sz - 1] = (i * 3) %% 113;
        if (i %% 3 == 0) {
          char **q = (char**)o;
          q[0] = o;
        }
        objs[i] = o;
      }
      for (gen = 0; gen < gens; gen = gen + 1) {
        int pid = fork();
        if (pid == 0) {
          int j;
          int acc = 0;
          for (j = gen %% 4; j < n; j = j + 4) { free(objs[j]); }
          for (j = 0; j < churn; j = j + 1) {
            int sz = 16 + ((j * 37 + gen * 101) %% 2600);
            char *t = malloc(sz);
            t[0] = j %% 127;
            t[sz - 1] = (j + gen) %% 127;
            acc = acc + t[0] + t[sz - 1];
            free(t);
          }
          exit(acc %% 31);
        }
        int st = 0;
        wait(&st);
        print_str("#");
      }
      int sum = 0;
      for (i = 0; i < n; i = i + 1) {
        char *o = objs[i];
        sum = sum + o[0];
        free(o);
      }
      print_int(sum);
      print_str(" malloc ok");
      return 0;
    }
  |}
    objs objs generations churn

(* The marker count a clean run produces (one '#' per generation). *)
let expected_markers ?(generations = default_generations) () = generations
