(* initdb-dynamic: the paper's macro-benchmark (§5.2).

   A miniature PostgreSQL "initdb": bootstrap catalogs are built through a
   storage-engine shared object (libpq), with page-buffered heap files
   written through real write() syscalls, a catalog hash table, sorted
   index builds, and configuration files — a dynamically linked, C-heavy,
   allocation-heavy workload. The paper measured CheriABI at +6.8% cycles
   (11% with the small CLC immediate) and ASan at 3.29x. *)

let libpq_src =
  {|
    extern int strcmp(char*, char*);
    extern char *strcpy(char*, char*);
    extern char *strcat(char*, char*);
    extern char *itoa(int, char*);
    extern int strhash(char*);
    extern void qsort_ints(int*, int, int);

    struct relation {
      char name[32];
      int fd;
      int oid;
      int ntuples;
      int page_used;
      char *page;          /* 8 KiB buffer */
    };

    int next_oid;

    /* catalog: open-addressing hash of relation name -> oid */
    int cat_oids[128];
    char cat_names[4096];  /* 128 slots x 32 chars */

    int catalog_insert(char *name, int oid) {
      int h = strhash(name) % 128;
      while (cat_oids[h]) h = (h + 1) % 128;
      cat_oids[h] = oid;
      strcpy(&cat_names[h * 32], name);
      return h;
    }

    int catalog_lookup(char *name) {
      int h = strhash(name) % 128;
      while (cat_oids[h]) {
        if (strcmp(&cat_names[h * 32], name) == 0) return cat_oids[h];
        h = (h + 1) % 128;
      }
      return 0;
    }

    struct relation *rel_create(char *name) {
      struct relation *r = (struct relation*)malloc(sizeof(struct relation));
      strcpy(r->name, "/pgdata/");
      strcat(r->name, name);
      r->fd = open(r->name, 0x0200 | 1, 0);
      if (next_oid == 0) next_oid = 16384;
      r->oid = next_oid;
      next_oid = next_oid + 1;
      r->ntuples = 0;
      r->page_used = 16;       /* page header */
      r->page = malloc(8192);
      memset(r->page, 0, 8192);
      catalog_insert(name, r->oid);
      return r;
    }

    void rel_flush(struct relation *r) {
      if (r->page_used > 16) {
        write(r->fd, r->page, 8192);
        memset(r->page, 0, 8192);
        r->page_used = 16;
      }
    }

    void rel_insert(struct relation *r, char *tuple, int len) {
      if (r->page_used + len + 8 > 8192) rel_flush(r);
      char *dst = r->page + r->page_used;
      /* tuple header: length */
      dst[0] = len & 0xff;
      dst[1] = (len >> 8) & 0xff;
      memcpy(dst + 8, tuple, len);
      r->page_used = r->page_used + len + 8;
      /* keep 8-byte alignment for the next tuple */
      r->page_used = (r->page_used + 7) & ~7;
      r->ntuples = r->ntuples + 1;
    }

    int rel_close(struct relation *r) {
      rel_flush(r);
      int n = r->ntuples;
      close(r->fd);
      free(r->page);
      free((char*)r);
      return n;
    }

    /* Sorted "index build" over a key column. */
    int index_build(int *keys, int n) {
      qsort_ints(keys, 0, n - 1);
      int dup = 0;
      int i;
      for (i = 1; i < n; i = i + 1) {
        if (keys[i] == keys[i - 1]) dup = dup + 1;
      }
      return dup;
    }
  |}

let libpq_externs =
  {|
    extern int catalog_insert(char*, int);
    extern int catalog_lookup(char*);
    extern struct relation *rel_create(char*);
    extern void rel_insert(struct relation*, char*, int);
    extern void rel_flush(struct relation*);
    extern int rel_close(struct relation*);
    extern int index_build(int*, int);
  |}

let initdb_src =
  libpq_externs
  ^ {|
    struct relation { char name[32]; int fd; int oid; int ntuples;
                      int page_used; char *page; };

    char tuple[256];
    char tmp[64];
    int keys[1600];

    int bootstrap_rel(char *name, int rows, int seed) {
      struct relation *r = rel_create(name);
      srand(seed);
      int i;
      for (i = 0; i < rows; i = i + 1) {
        strcpy(tuple, name);
        strcat(tuple, "_row_");
        strcat(tuple, itoa(i, tmp));
        strcat(tuple, ":");
        strcat(tuple, itoa(rand(), tmp));
        strcat(tuple, ":");
        strcat(tuple, itoa(rand() * 31 % 99991, tmp));
        rel_insert(r, tuple, strlen(tuple) + 1);
        keys[i % 1600] = rand();
      }
      int dups = index_build(keys, min_i(rows, 1600));
      return rel_close(r) + dups;
    }

    int write_conf(char *path, int lines) {
      int fd = open(path, 0x0200 | 1, 0);
      int i;
      for (i = 0; i < lines; i = i + 1) {
        strcpy(tuple, "option_");
        strcat(tuple, itoa(i, tmp));
        strcat(tuple, " = ");
        strcat(tuple, itoa(i * 37 % 101, tmp));
        strcat(tuple, "\n");
        write(fd, tuple, strlen(tuple));
      }
      close(fd);
      return lines;
    }

    int main(int argc, char **argv) {
      int total = 0;
      print_str("creating template databases... ");
      total = total + bootstrap_rel("pg_class", 300, 1);
      total = total + bootstrap_rel("pg_type", 420, 2);
      total = total + bootstrap_rel("pg_attribute", 1500, 3);
      total = total + bootstrap_rel("pg_proc", 1600, 4);
      total = total + bootstrap_rel("pg_operator", 800, 5);
      total = total + bootstrap_rel("pg_index", 160, 6);
      print_str("ok\n");
      print_str("writing configuration files... ");
      total = total + write_conf("/pgdata/postgresql.conf", 300);
      total = total + write_conf("/pgdata/pg_hba.conf", 90);
      print_str("ok\n");
      if (catalog_lookup("pg_proc") == 0) return 1;
      if (catalog_lookup("pg_class") == 0) return 1;
      print_str("rows=");
      print_int(total);
      print_str("\n");
      return 0;
    }
  |}

(* Run initdb under [abi] with the given code-generation options. *)
let run ?opts ~abi () =
  Harness.run ?opts ~abi ~extra_libs:[ "libpq", libpq_src ]
    ~argv:[ "initdb"; "-D"; "/pgdata" ] initdb_src
