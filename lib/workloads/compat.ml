(* Table 2: the CheriABI compatibility study.

   Two analyzers recognize the paper's idiom classes, mirroring the
   compiler warnings the authors added (bitwise math on capabilities,
   remainder on pointers, unprototyped calls):

   - the *semantic* analyzer (lib/analysis/lint.ml): a typed-AST dataflow
     pass run over every source CSmall can parse and type — all of this
     repository's own workload sources;
   - the *textual* patterns below, kept only for idioms CSmall cannot
     type (va_args, preprocessor macros, uintptr_t typedefs) — i.e. the
     synthetic legacy-C corpus standing in for the FreeBSD tree.

   Categories:

   PP pointer provenance     IP integer provenance   M monotonicity
   PS pointer shape          I  pointer-as-integer   VA virtual address
   BF bit flags              H  hashing              A  alignment
   CC calling convention     U  unsupported

   We cannot analyze the real FreeBSD tree (not available here); the
   analyzers run over (a) a synthetic legacy-C corpus carrying these
   idioms at realistic densities, organized into the paper's four groups,
   and (b) this repository's own CSmall sources. *)

type category = PP | IP | M | PS | I | VA | BF | H | A | CC | U

let categories = [ PP; IP; M; PS; I; VA; BF; H; A; CC; U ]

let cat_name = function
  | PP -> "PP" | IP -> "IP" | M -> "M" | PS -> "PS" | I -> "I"
  | VA -> "VA" | BF -> "BF" | H -> "H" | A -> "A" | CC -> "CC" | U -> "U"

let cat_description = function
  | PP -> "pointer provenance"
  | IP -> "integer provenance"
  | M -> "monotonicity"
  | PS -> "pointer shape"
  | I -> "pointer as integer"
  | VA -> "virtual address"
  | BF -> "bit flags"
  | H -> "hashing"
  | A -> "alignment"
  | CC -> "calling convention"
  | U -> "unsupported"

(* --- Pattern machinery ------------------------------------------------------------- *)

(* Count non-overlapping occurrences of [needle] in [hay]. *)
let count_substring hay needle =
  let nl = String.length needle and hl = String.length hay in
  if nl = 0 || nl > hl then 0
  else begin
    let n = ref 0 and i = ref 0 in
    while !i <= hl - nl do
      if String.sub hay !i nl = needle then begin
        incr n;
        i := !i + nl
      end
      else incr i
    done;
    !n
  end

(* Normalize whitespace so that patterns are spacing-insensitive. *)
let normalize src =
  let b = Buffer.create (String.length src) in
  let last_space = ref true in
  String.iter
    (fun c ->
      if c = ' ' || c = '\t' || c = '\n' || c = '\r' then begin
        if not !last_space then Buffer.add_char b ' ';
        last_space := true
      end
      else begin
        Buffer.add_char b c;
        last_space := false
      end)
    src;
  Buffer.contents b

(* Each category is recognized by a list of textual signatures. *)
let signatures =
  [ PP, [ "container_of("; "ipc_send_ptr("; "from unrelated object" ];
    IP, [ "(int)&"; "(long)&"; "(unsigned)"; "(int)ptr"; "(long)ptr";
          "through int" ];
    M, [ "[-1]"; "- HDR_SIZE)"; "widen("; "grow_bounds(" ];
    PS, [ "sizeof(void *) == 8"; "sizeof(char *) == 8"; "== 8 /* ptr"
        ; "PTR_SIZE 8"; "pad to 8" ];
    I, [ "(void *)-1"; "(char *)-1"; "MAP_FAILED"; "(void *)1" ];
    VA, [ "(uintptr_t)"; "(vaddr_t)" ];
    BF, [ "| 1)"; "& ~1)"; "& 1)"; "| TAG_BIT"; "& ~TAG_MASK" ];
    H, [ "hash((uintptr_t)"; ">> 4) %"; "ptr_hash("; ">> PAGE_SHIFT) %" ];
    A, [ "+ 7) & ~7"; "+ 15) & ~15"; "ALIGN("; "roundup2("; "& ~(sizeof" ];
    CC, [ "..."; "va_arg"; "va_start"; "K&R"; "()" ];
    U, [ "sbrk("; "^ (uintptr_t"; "xor_ptr(" ] ]

(* Analyze one source file textually: per-category occurrence counts.
   This is the fallback for sources CSmall cannot type. *)
let analyze src =
  let src = normalize src in
  List.map
    (fun (cat, pats) ->
      cat, List.fold_left (fun acc p -> acc + count_substring src p) 0 pats)
    signatures

let add_counts a b =
  List.map2 (fun (c1, n1) (c2, n2) -> assert (c1 = c2); c1, n1 + n2) a b

let zero_counts = List.map (fun c -> c, 0) categories

(* --- Semantic analysis (lib/analysis) ----------------------------------------------- *)

let of_lint_category = function
  | Cheri_analysis.Lint.PP -> PP
  | Cheri_analysis.Lint.IP -> IP
  | Cheri_analysis.Lint.M -> M
  | Cheri_analysis.Lint.PS -> PS
  | Cheri_analysis.Lint.I -> I
  | Cheri_analysis.Lint.VA -> VA
  | Cheri_analysis.Lint.BF -> BF
  | Cheri_analysis.Lint.H -> H
  | Cheri_analysis.Lint.A -> A
  | Cheri_analysis.Lint.CC -> CC

(* Run the typed-AST provenance lint over a CSmall source. Returns [None]
   when the source is not typeable CSmall (then only the textual patterns
   apply). Sources referencing libc are retried with the prototypes
   prepended. *)
let analyze_semantic src : (category * int) list option =
  let count diags =
    List.map
      (fun c ->
        ( c,
          List.length
            (List.filter
               (fun d -> of_lint_category d.Cheri_analysis.Lint.d_cat = c)
               diags) ))
      categories
  in
  match Cheri_analysis.Lint.analyze_source src with
  | Ok diags -> Some (count diags)
  | Error _ ->
    (match
       Cheri_analysis.Lint.analyze_source ~externs:Stdlib_src.libc_externs src
     with
     | Ok diags -> Some (count diags)
     | Error _ -> None)

(* Semantic first, textual fallback: the per-file analysis used for the
   repository's own sources. *)
let analyze_file src =
  match analyze_semantic src with
  | Some counts -> counts
  | None -> analyze src

(* Analyze a group of named files (textual patterns only — the legacy-C
   corpus path). *)
let analyze_group files =
  List.fold_left (fun acc (_, src) -> add_counts acc (analyze src)) zero_counts
    files

(* Analyze a group semantically where possible. *)
let analyze_group_semantic files =
  List.fold_left
    (fun acc (_, src) -> add_counts acc (analyze_file src))
    zero_counts files

(* --- The legacy-C corpus -------------------------------------------------------------- *)
(* Synthetic files standing in for the FreeBSD tree's four groups. The
   idiom densities follow Table 2's relative magnitudes: libraries carry
   by far the most issues, headers few, tests fewest. *)

let headers_group =
  [ "sys/param.h",
    {| #define ALIGN(p) (((uintptr_t)(p) + 7) & ~7)
       #define roundup2(x, y) (((x) + ((y) - 1)) & (~((y) - 1)))
       typedef unsigned long vaddr_t;
       /* legacy: flags live in the low bits of the handle */
       #define HANDLE_FLAGS(h) ((uintptr_t)(h) & 1) |};
    "sys/mman.h",
    {| #define MAP_FAILED ((void *)-1)
       static inline int page_of(void *p) { return ((uintptr_t)p + 15) & ~15; } |};
    "sys/queue_impl.h",
    {| /* intrusive lists recover the container from a field pointer */
       #define container_of(p, type, field) \
         ((type *)((char *)(p) - offsetof(type, field))) |} ]

let libraries_group =
  [ "libc/stdio_impl.c",
    {| static FILE *cache = (FILE *)1;   /* sentinel: (void *)1 *)  */
       int vfprintf(FILE *f, const char *fmt, ...) {
         va_list ap; va_start(ap, fmt);
         long cookie = (long)&f;          /* cast through long *)  */
         int h = hash((uintptr_t)f >> 4) % NBUCKETS;
         return h + (int)va_arg(ap, int);
       } |};
    "libc/malloc_compat.c",
    {| void *old_sbrk_alloc(int n) {
         char *base = sbrk(n);
         uintptr_t a = ((uintptr_t)base + 15) & ~15;  /* ALIGN( *)  */
         return (void *)(a | 1);   /* tag allocated bit: | 1) *)  */
       }
       void *grow(void *p) { return widen(p); } |};
    "libc/locks.c",
    {| /* lock word stores owner pointer with status in the low bits *)  */
       int try_lock(lock_t *l) {
         uintptr_t w = (uintptr_t)l->owner;
         if (w & 1) return 0;
         l->owner = (void *)(w | 1);
         return 1;
       } |};
    "libc/hash_tbl.c",
    {| int bucket_of(void *key) { return ptr_hash(key) % 64; }
       int rehash(void *key) { return hash((uintptr_t)key >> 4) % 128; } |};
    "libc/db_compat.c",
    {| /* BDB-style page records assume pointer-sized slots of 8 *)  */
       #define PTR_SIZE 8
       void put_ptr(char *page, void *p) { memcpy(page + 3, &p, PTR_SIZE); }
       int key_cast(void *p) { return (int)&p ? (unsigned)p : 0; } |};
    "libc/rpc_callback.c",
    {| /* SunRPC callbacks declared K&R-style: () prototypes *)  */
       int (*cb)();
       int do_call() { return cb(); }
       int dispatch(int which, ...) { va_list ap; va_start(ap, which); return 0; } |};
    "libm/frexp_bits.c",
    {| int classify(double *d) {
         long bits = (long)&d;             /* integer provenance *)  */
         return (bits >> 4) % 3;
       } |} ]

let programs_group =
  [ "bin/ls_compat.c",
    {| int main(int argc, char **argv) {
         void *h = MAP_FAILED;
         if (h == (void *)-1) return 1;
         printf("%d", argc, argv);        /* excess variadic args: ... *)  */
         return 0;
       } |};
    "sbin/route_keys.c",
    {| int key_hash(void *dst) { return hash((uintptr_t)dst >> 4) % 256; }
       int aligned(void *p) { return ((uintptr_t)p + 7) & ~7; } |};
    "usr.bin/sort_records.c",
    {| /* records keep a pointer parked in a long field *)  */
       struct rec { long parked; };
       void park(struct rec *r, char *p) { r->parked = (long)&p[0]; }
       char *unpark(struct rec *r) { return (char *)r->parked; } |};
    "usr.sbin/daemon_compat.c",
    {| int spawn(void) {
         char *brk = sbrk(0);
         return (int)&brk;
       } |} ]

let tests_group =
  [ "tests/lib/test_align.c",
    {| int main(void) {
         char buf[64];
         char *p = (char *)(((uintptr_t)buf + 15) & ~15);
         return p != buf;
       } |};
    "tests/sys/test_mmap_sentinel.c",
    {| int main(void) {
         void *p = mmap(0, 4096, 3, 0x1000, -1, 0);
         return p == MAP_FAILED;
       } |};
    "tests/libc/test_variadic.c",
    {| int sum(int n, ...) { va_list ap; va_start(ap, n); return n; }
       int main(void) { return sum(3, 1, 2, 3); } |} ]

let corpus =
  [ "BSD headers", headers_group;
    "BSD libraries", libraries_group;
    "BSD programs", programs_group;
    "BSD tests", tests_group ]

(* The paper's Table 2 counts, for side-by-side printing. *)
let paper_counts =
  [ "BSD headers", [ 0; 8; 0; 4; 2; 1; 1; 0; 3; 2; 0 ];
    "BSD libraries", [ 5; 18; 4; 19; 22; 20; 11; 6; 19; 42; 19 ];
    "BSD programs", [ 1; 11; 1; 3; 13; 0; 0; 0; 7; 11; 2 ];
    "BSD tests", [ 0; 0; 0; 0; 2; 0; 0; 0; 2; 7; 2 ] ]

(* This repository's own sources, grouped analogously. *)
let own_sources () =
  [ "sim headers", [ "libc_externs", Stdlib_src.libc_externs ];
    "sim libraries",
    [ "libc", Stdlib_src.libc_src; "libpq", Minipg.libpq_src;
      "libssl", Openssl_sim.libssl_src ];
    "sim programs",
    ("initdb", Minipg.initdb_src)
    :: ("s_server", Openssl_sim.server_src)
    :: Mibench.benchmarks;
    "sim tests",
    List.map (fun (n, s) -> n, s) Testsuite.sys_tests ]
