(* Measurement harness: run one workload in a fresh system and collect the
   metrics Figure 4 reports — retired instructions, cycles, L2 misses —
   plus static code size (for the CLC ablation). *)

module Abi = Cheri_core.Abi
module Kernel = Cheri_kernel.Kernel
module Proc = Cheri_kernel.Proc
module Signo = Cheri_kernel.Signo
module Cpu = Cheri_isa.Cpu
module Cache = Cheri_tagmem.Cache

type measurement = {
  m_abi : Abi.t;
  m_status : Proc.exit_status option;
  m_output : string;
  m_instructions : int;
  m_cycles : int;
  m_l2_misses : int;
  m_code_bytes : int;
  m_syscalls : int;
  m_faults : string list;
}

let ok m = m.m_status = Some (Proc.Exited 0)

let status_string m =
  match m.m_status with
  | Some (Proc.Exited c) -> Printf.sprintf "exit %d" c
  | Some (Proc.Signaled s) -> Signo.name s
  | None -> "running"

(* Run [src] (linked against libc) under [abi] and measure. [engine]
   selects the interpreter (default: the kernel config's default, i.e. the
   block engine); [quantum] overrides the scheduler timeslice, which the
   engine-parity tests use to force mid-block preemption; [elide] installs
   the abstract interpreter as the kernel's fact provider, so the block
   engine compiles out statically proved capability checks (the metrics
   must nevertheless be bit-identical — eliding a proved check is a pure
   no-op). *)
let run ?opts ?(extra_libs = []) ?(argv = [ "prog" ])
    ?(max_steps = 400_000_000) ?l2_size ?engine ?quantum ?(elide = false)
    ?(fact_mode = Cheri_analysis.Absint.Lazy_sb) ~abi src =
  let k = Kernel.boot ?l2_size () in
  (match engine with
   | Some e -> k.Cheri_kernel.Kstate.config.Cheri_kernel.Kstate.engine <- e
   | None -> ());
  (match quantum with
   | Some q -> k.Cheri_kernel.Kstate.config.Cheri_kernel.Kstate.quantum <- q
   | None -> ());
  if elide then
    k.Cheri_kernel.Kstate.config.Cheri_kernel.Kstate.fact_provider <-
      Some (Cheri_analysis.Absint.provider ~mode:fact_mode ());
  Cheri_libc.Runtime.install k;
  let image =
    Stdlib_src.build_image ?opts ~abi ~name:"bench" ~extra_libs src
  in
  Cheri_kernel.Vfs.add_exe k.Cheri_kernel.Kstate.vfs "/bin/bench" ~abi image;
  let status, out, p = Kernel.run_program ~max_steps k ~path:"/bin/bench" ~argv in
  { m_abi = abi;
    m_status = status;
    m_output = out;
    m_instructions = p.Proc.ctx.Cpu.instret;
    m_cycles = p.Proc.ctx.Cpu.cycles;
    m_l2_misses = Cache.l2_misses (Kernel.Kstate.hierarchy k);
    m_code_bytes = Cheri_cc.Compile.image_code_size image;
    m_syscalls = p.Proc.syscall_count;
    m_faults = p.Proc.fault_log }

(* Percentage overhead of [value] relative to [base]. A zero baseline has
   no meaningful overhead: returning 0.0 here used to silently report "no
   overhead" (a real measurement-harness bug when a counter is dead);
   [nan] poisons every downstream aggregate instead of hiding it. The
   fig4-style comparison paths assert their baselines are live before
   calling this. *)
let overhead_pct ~base value =
  if base = 0 then Float.nan
  else 100.0 *. (float_of_int value -. float_of_int base) /. float_of_int base

type comparison = {
  c_name : string;
  c_base : measurement;            (* mips64 *)
  c_cheri : measurement;
  c_insn_pct : float;
  c_cycle_pct : float;
  c_l2_pct : float;
}

(* Vary every srand() seed in the source by [k]: the benchmark computes a
   different (still deterministic) instance, giving Fig. 4 its spread. *)
let perturb_seeds src k =
  if k = 0 then src
  else begin
    let b = Buffer.create (String.length src + 64) in
    let n = String.length src in
    let pat = "srand(" in
    let pl = String.length pat in
    let i = ref 0 in
    while !i < n do
      if !i + pl <= n && String.sub src !i pl = pat then begin
        Buffer.add_string b (Printf.sprintf "srand(%d + " k);
        i := !i + pl
      end
      else begin
        Buffer.add_char b src.[!i];
        incr i
      end
    done;
    Buffer.contents b
  end

let compare_abis ?(argv = [ "prog" ]) ?(extra_libs = []) ~name src =
  let base = run ~abi:Abi.Mips64 ~argv ~extra_libs src in
  let cheri = run ~abi:Abi.Cheriabi ~argv ~extra_libs src in
  if not (ok base) then
    failwith
      (Printf.sprintf "%s: mips64 run failed: %s (%s)" name
         (status_string base)
         (String.concat "; " base.m_faults));
  if not (ok cheri) then
    failwith
      (Printf.sprintf "%s: cheriabi run failed: %s (%s)" name
         (status_string cheri)
         (String.concat "; " cheri.m_faults));
  if base.m_output <> cheri.m_output then
    failwith (Printf.sprintf "%s: output mismatch between ABIs" name);
  (* The comparison columns divide by these: a dead counter would turn the
     whole fig4 row into nan, so fail loudly at the source instead. *)
  if base.m_instructions = 0 || base.m_cycles = 0 || base.m_l2_misses = 0 then
    failwith
      (Printf.sprintf
         "%s: dead mips64 baseline (insns=%d cycles=%d l2=%d): overhead \
          undefined" name base.m_instructions base.m_cycles base.m_l2_misses);
  { c_name = name;
    c_base = base;
    c_cheri = cheri;
    c_insn_pct = overhead_pct ~base:base.m_instructions cheri.m_instructions;
    c_cycle_pct = overhead_pct ~base:base.m_cycles cheri.m_cycles;
    c_l2_pct = overhead_pct ~base:base.m_l2_misses cheri.m_l2_misses }

(* The cache-study ablation (paper 6): the same benchmark across L2
   sizes, exposing how CheriABI's larger pointer footprint interacts with
   cache capacity. *)
let cache_study ~name ?(l2_sizes = [ 64; 128; 256; 512; 1024 ]) src =
  List.map
    (fun kib ->
      let l2 = kib * 1024 in
      let base = run ~l2_size:l2 ~abi:Abi.Mips64 src in
      let cheri = run ~l2_size:l2 ~abi:Abi.Cheriabi src in
      if not (ok base && ok cheri) then
        failwith (Printf.sprintf "%s failed at L2=%dK" name kib);
      ( kib,
        overhead_pct ~base:base.m_cycles cheri.m_cycles,
        base.m_l2_misses,
        cheri.m_l2_misses ))
    l2_sizes

(* Median and interquartile range of a float list. *)
let median_iqr xs =
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  let at q =
    let i = int_of_float (q *. float_of_int (n - 1)) in
    a.(i)
  in
  at 0.5, at 0.25, at 0.75

type spread = {
  s_name : string;
  s_base_insns : int;
  s_insn_med : float;
  s_cycle_med : float;
  s_cycle_q1 : float;
  s_cycle_q3 : float;
  s_l2_med : float;
}

(* Run [runs] seed-perturbed instances and summarize, as the paper's
   Fig. 4 does with medians and IQR error bars. *)
let compare_abis_spread ?(runs = 3) ~name src =
  let cs =
    List.init runs (fun k -> compare_abis ~name (perturb_seeds src k))
  in
  let cycle = List.map (fun c -> c.c_cycle_pct) cs in
  let insn = List.map (fun c -> c.c_insn_pct) cs in
  let l2 = List.map (fun c -> c.c_l2_pct) cs in
  let cm, cq1, cq3 = median_iqr cycle in
  let im, _, _ = median_iqr insn in
  let lm, _, _ = median_iqr l2 in
  { s_name = name;
    s_base_insns = (List.hd cs).c_base.m_instructions;
    s_insn_med = im; s_cycle_med = cm; s_cycle_q1 = cq1; s_cycle_q3 = cq3;
    s_l2_med = lm }
