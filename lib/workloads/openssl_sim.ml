(* The traced workload of §5.5: an openssl-s_server-shaped program.

   Dynamically linked against libc and a TLS-library shared object; it
   accepts a "connection" over a socketpair from a forked client, performs
   a handshake (key-schedule mixing), and exchanges an encrypted file —
   exercising thread-local storage, dynamic linking, heavy allocation and
   pointer manipulation, and system calls, like the original.

   [run_traced] executes it under CheriABI with the ISA tracer attached to
   the server process and returns the collected events for the
   granularity analysis (Fig. 5). *)

module Abi = Cheri_core.Abi
module Kernel = Cheri_kernel.Kernel
module Proc = Cheri_kernel.Proc
module Trace = Cheri_isa.Trace

let libssl_src =
  {|
    extern int strcmp(char*, char*);
    extern char *strcpy(char*, char*);
    extern int strhash(char*);

    struct session {
      int id;
      int state;
      char *rx;
      char *tx;
      int keys[16];
      struct session *next;
    };

    tls int ssl_error;
    struct session *sessions;
    int session_count;

    int rotl32(int x, int n) {
      return ((x << n) | ((x & 0xffffffff) >> (32 - n))) & 0xffffffff;
    }

    struct session *ssl_new(int id) {
      struct session *s = (struct session*)malloc(sizeof(struct session));
      s->id = id;
      s->state = 0;
      s->rx = malloc(512);
      s->tx = malloc(512);
      s->next = sessions;
      sessions = s;
      session_count = session_count + 1;
      ssl_error = 0;
      return s;
    }

    void ssl_free(struct session *s) {
      free(s->rx);
      free(s->tx);
      free((char*)s);
      session_count = session_count - 1;
    }

    int mix_block(int k, int round) {
      int sched[8];
      int j;
      for (j = 0; j < 8; j = j + 1) {
        k = (rotl32(k, 5) + (k ^ ((round + j) * 0x5bd1e995))) & 0xffffffff;
        sched[j] = k;
      }
      int acc = 0;
      for (j = 0; j < 8; j = j + 1) acc = (acc ^ sched[j]) & 0xffffffff;
      return acc;
    }

    int ssl_handshake(struct session *s, int seed) {
      int k = seed & 0xffffffff;
      int i;
      for (i = 0; i < 16; i = i + 1) {
        k = (k ^ rotl32(k + 0x9e3779b9, 13)) & 0xffffffff;
        k = mix_block(k, i);
        k = mix_block(k, i + 7);
        s->keys[i] = k;
      }
      s->state = 1;
      ssl_error = 0;
      return 0;
    }

    /* per-record processing through a bounded stack block, as a real TLS
       record layer does */
    int crypt_record(struct session *s, char *in, char *out, int base, int n) {
      char block[64];
      int i;
      for (i = 0; i < n; i = i + 1) block[i] = in[base + i];
      for (i = 0; i < n; i = i + 1) {
        int key = s->keys[(base + i) & 15];
        block[i] = (block[i] ^ (key >> ((base + i) & 7))) & 0xff;
      }
      for (i = 0; i < n; i = i + 1) out[base + i] = block[i];
      return n;
    }

    int ssl_crypt(struct session *s, char *in, char *out, int n) {
      if (s->state != 1) { ssl_error = 1; return -1; }
      int done = 0;
      while (done < n) {
        int chunk = n - done;
        if (chunk > 64) chunk = 64;
        crypt_record(s, in, out, done, chunk);
        done = done + chunk;
      }
      return n;
    }
  |}

let libssl_externs =
  {|
    struct session { int id; int state; char *rx; char *tx;
                     int keys[16]; struct session *next; };
    extern struct session *ssl_new(int id);
    extern void ssl_free(struct session *s);
    extern int ssl_handshake(struct session *s, int seed);
    extern int ssl_crypt(struct session *s, char *in, char *out, int n);
    extern int mix_block(int k, int round);
  |}

let server_src =
  libssl_externs
  ^ {|
    char fdata[4096];

    int main(int argc, char **argv) {
      int sv[2];
      socketpair(sv);
      /* prepare the "file" to exchange *)  */
      srand(41);
      int flen = 3000;
      int i;
      for (i = 0; i < flen; i = i + 1) fdata[i] = 32 + rand() % 90;

      /* warm-up handshakes: session churn through the allocator */
      for (i = 0; i < 8; i = i + 1) {
        struct session *w = ssl_new(100 + i);
        ssl_handshake(w, 1000 + i * 17);
        ssl_free(w);
      }
      char *scratch = malloc(20000);   /* a large allocation */
      scratch[0] = 1;
      free(scratch);

      int pid = fork();
      if (pid == 0) {
        /* client: request the file, decrypt, verify *)  */
        struct session *cs = ssl_new(1);
        ssl_handshake(cs, 4242);
        char *req = malloc(64);
        strcpy(req, "GET /secret.txt");
        write(sv[1], req, 16);
        char *enc = malloc(4096);
        char *dec = malloc(4096);
        int got = 0;
        while (got < flen) {
          int r = read(sv[1], enc + got, 4096 - got);
          if (r <= 0) break;
          got = got + r;
        }
        ssl_crypt(cs, enc, dec, got);
        int bad = 0;
        for (i = 0; i < got; i = i + 1) {
          if (dec[i] != fdata[i]) bad = bad + 1;
        }
        free(req);
        free(enc);
        free(dec);
        ssl_free(cs);
        exit(bad == 0);
      }
      /* server: accept, handshake, send the encrypted file *)  */
      struct session *s = ssl_new(2);
      ssl_handshake(s, 4242);
      char *reqbuf = malloc(64);
      int r = read(sv[0], reqbuf, 16);
      if (r <= 0) exit(2);
      if (strcmp(reqbuf, "GET /secret.txt") != 0) exit(3);
      char *enc = malloc(4096);
      int pass;
      for (pass = 0; pass < 3; pass = pass + 1) ssl_crypt(s, fdata, enc, flen);
      int sent = 0;
      while (sent < flen) {
        int w = write(sv[0], enc + sent, min_i(1024, flen - sent));
        if (w <= 0) break;
        sent = sent + w;
      }
      free(reqbuf);
      free(enc);
      ssl_free(s);
      int status = 0;
      wait(&status);
      /* child exits 1 on success *)  */
      if ((status >> 8) != 1) return 4;
      print_str("exchange ok");
      return 0;
    }
  |}

(* Multi-round traffic variant for the fleet simulator: the same
   server/client shape as [server_src], but instead of one file exchange
   the forked client issues [rounds] request/response rounds, each a
   16-byte request answered with a [payload]-byte encrypted record. The
   server prints one '#' to its console after serving each round — the
   fleet harness counts these markers between run chunks to timestamp
   request completions in *simulated* cycles, so per-request latency is
   deterministic and independent of host scheduling or domain count. The
   client decrypts and verifies every record and exits 1 on success, which
   the server checks after [wait]; "fleet ok" marks a fully verified run.

   [seed] perturbs both the record contents and the handshake, so
   machines in a mix are genuinely heterogeneous (different data, same
   code — they share one image when [rounds]/[payload]/[seed] agree). *)
let traffic_server_src ~rounds ~payload ~seed =
  libssl_externs
  ^ Printf.sprintf
      {|
    int main(int argc, char **argv) {
      int rounds = %d;
      int plen = %d;
      int sv[2];
      socketpair(sv);
      srand(%d);
      char *data = malloc(plen);
      int i;
      for (i = 0; i < plen; i = i + 1) data[i] = 32 + rand() %% 90;

      int pid = fork();
      if (pid == 0) {
        /* client: [rounds] request/response rounds, verify each record *) */
        struct session *cs = ssl_new(1);
        ssl_handshake(cs, %d + 17);
        char *req = malloc(32);
        strcpy(req, "GET /record");
        char *enc = malloc(plen);
        char *dec = malloc(plen);
        int bad = 0;
        int r;
        for (r = 0; r < rounds; r = r + 1) {
          write(sv[1], req, 16);
          int got = 0;
          while (got < plen) {
            int n = read(sv[1], enc + got, plen - got);
            if (n <= 0) exit(9);
            got = got + n;
          }
          ssl_crypt(cs, enc, dec, plen);
          for (i = 0; i < plen; i = i + 1) {
            if (dec[i] != data[i]) bad = bad + 1;
          }
        }
        ssl_free(cs);
        exit(bad == 0);
      }
      /* server: serve [rounds] records, marking each completion *) */
      struct session *s = ssl_new(2);
      ssl_handshake(s, %d + 17);
      char *reqbuf = malloc(32);
      char *enc = malloc(plen);
      int r;
      for (r = 0; r < rounds; r = r + 1) {
        int n = read(sv[0], reqbuf, 16);
        if (n <= 0) exit(2);
        ssl_crypt(s, data, enc, plen);
        int sent = 0;
        while (sent < plen) {
          int w = write(sv[0], enc + sent, min_i(512, plen - sent));
          if (w <= 0) exit(3);
          sent = sent + w;
        }
        print_str("#");
      }
      free(reqbuf);
      free(enc);
      ssl_free(s);
      int status = 0;
      wait(&status);
      if ((status >> 8) != 1) return 4;
      print_str("fleet ok");
      return 0;
    }
  |}
      rounds payload seed seed seed

(* Run the server under CheriABI with tracing; returns (status, output,
   trace events). *)
let run_traced () =
  let k = Kernel.boot () in
  Cheri_libc.Runtime.install k;
  let collector = Trace.collector () in
  k.Cheri_kernel.Kstate.tracer <- Some (Trace.sink_of collector);
  Stdlib_src.install k ~path:"/bin/s_server" ~abi:Abi.Cheriabi
    ~extra_libs:[ "libssl", libssl_src ]
    server_src;
  (* Trace the first process (the server). *)
  k.Cheri_kernel.Kstate.trace_pid <- Some k.Cheri_kernel.Kstate.next_pid;
  let status, out, _p =
    Kernel.run_program ~max_steps:60_000_000 k ~path:"/bin/s_server"
      ~argv:[ "s_server"; "-port"; "4433" ]
  in
  status, out, Trace.to_list collector

(* Stack range for classifying trace derivations. *)
let stack_range = Cheri_kernel.Exec.stack_base, Cheri_kernel.Exec.stack_top
