(* The CSmall C library, compiled as the shared object "libc" and linked
   into every workload. Exercises the dynamic-linking machinery the same
   way FreeBSD's libc does in the paper: cross-object calls through the
   capability table, capability-preserving pointer swaps in qsort. *)

let libc_src =
  {|
    int abs_i(int x) { if (x < 0) return -x; return x; }
    int min_i(int a, int b) { if (a < b) return a; return b; }
    int max_i(int a, int b) { if (a > b) return a; return b; }

    int strcmp(char *a, char *b) {
      int i = 0;
      while (a[i] && b[i] && a[i] == b[i]) i = i + 1;
      return a[i] - b[i];
    }

    int strncmp(char *a, char *b, int n) {
      int i = 0;
      while (i < n && a[i] && b[i] && a[i] == b[i]) i = i + 1;
      if (i == n) return 0;
      return a[i] - b[i];
    }

    char *strcpy(char *d, char *s) {
      int i = 0;
      while (s[i]) { d[i] = s[i]; i = i + 1; }
      d[i] = 0;
      return d;
    }

    char *strcat(char *d, char *s) {
      strcpy(d + strlen(d), s);
      return d;
    }

    int atoi(char *s) {
      int v = 0;
      int i = 0;
      int neg = 0;
      if (s[0] == '-') { neg = 1; i = 1; }
      while (s[i] >= '0' && s[i] <= '9') {
        v = v * 10 + (s[i] - '0');
        i = i + 1;
      }
      if (neg) return -v;
      return v;
    }

    char *itoa(int v, char *buf) {
      int i = 0;
      int neg = 0;
      if (v < 0) { neg = 1; v = -v; }
      if (v == 0) { buf[i] = '0'; i = i + 1; }
      while (v > 0) { buf[i] = '0' + v % 10; v = v / 10; i = i + 1; }
      if (neg) { buf[i] = '-'; i = i + 1; }
      buf[i] = 0;
      /* reverse */
      int j = 0;
      int k = i - 1;
      while (j < k) {
        char t = buf[j]; buf[j] = buf[k]; buf[k] = t;
        j = j + 1; k = k - 1;
      }
      return buf;
    }

    int g_rand_state;
    int srand(int seed) { g_rand_state = seed & 0x7fffffff; return 0; }
    int rand() {
      g_rand_state = (g_rand_state * 1103515245 + 12345) & 0x7fffffff;
      return (g_rand_state >> 16) & 0x7fff;
    }

    int isqrt(int n) {
      if (n < 2) return n;
      int x = n;
      int y = (x + 1) / 2;
      while (y < x) { x = y; y = (x + n / x) / 2; }
      return x;
    }

    int gcd(int a, int b) {
      while (b) { int t = a % b; a = b; b = t; }
      return a;
    }

    void qsort_ints(int *a, int lo, int hi) {
      if (lo >= hi) return;
      int p = a[(lo + hi) / 2];
      int i = lo;
      int j = hi;
      while (i <= j) {
        while (a[i] < p) i = i + 1;
        while (a[j] > p) j = j - 1;
        if (i <= j) {
          int t = a[i]; a[i] = a[j]; a[j] = t;
          i = i + 1; j = j - 1;
        }
      }
      qsort_ints(a, lo, j);
      qsort_ints(a, i, hi);
    }

    /* Sorting an array of pointers: the swap moves capabilities through
       memory, which the paper had to make tag-preserving (qsort, §4). */
    void qsort_strs(char **a, int lo, int hi) {
      if (lo >= hi) return;
      char *p = a[(lo + hi) / 2];
      int i = lo;
      int j = hi;
      while (i <= j) {
        while (strcmp(a[i], p) < 0) i = i + 1;
        while (strcmp(a[j], p) > 0) j = j - 1;
        if (i <= j) {
          char *t = a[i]; a[i] = a[j]; a[j] = t;
          i = i + 1; j = j - 1;
        }
      }
      qsort_strs(a, lo, j);
      qsort_strs(a, i, hi);
    }

    /* djb2-ish string hash. */
    int strhash(char *s) {
      int h = 5381;
      int i = 0;
      while (s[i]) {
        h = ((h << 5) + h + s[i]) & 0xffffff;
        i = i + 1;
      }
      return h;
    }
  |}

let libc_externs =
  {|
    extern int abs_i(int);
    extern int min_i(int, int);
    extern int max_i(int, int);
    extern int strcmp(char*, char*);
    extern int strncmp(char*, char*, int);
    extern char *strcpy(char*, char*);
    extern char *strcat(char*, char*);
    extern int atoi(char*);
    extern char *itoa(int, char*);
    extern int srand(int);
    extern int rand();
    extern int isqrt(int);
    extern int gcd(int, int);
    extern void qsort_ints(int*, int, int);
    extern void qsort_strs(char**, int, int);
    extern int strhash(char*);
  |}

(* Build an image for [src], dynamically linked against libc (and any
   extra shared objects). *)
let build_image ?opts ~abi ~name ?(extra_libs = []) src =
  Cheri_cc.Compile.build_image ?opts ~abi ~name
    ~libs:(("libc", libc_src) :: extra_libs)
    (libc_externs ^ src)

let install k ~path ~abi ?opts ?(extra_libs = []) src =
  let image = build_image ?opts ~abi ~name:path ~extra_libs src in
  Cheri_kernel.Vfs.add_exe k.Cheri_kernel.Kstate.vfs path ~abi image
