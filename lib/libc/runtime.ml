(* Runtime-builtin dispatcher.

   These execute with the *user's* authority: every pointer they receive is
   checked exactly as a capability load/store would be, and violations are
   delivered as signals to the process, not kernel errors. Under ASan the
   memory builtins also check shadow memory (the interceptors of the real
   sanitizer runtime). *)

module Cap = Cheri_cap.Cap
module Perms = Cheri_cap.Perms
module Cpu = Cheri_isa.Cpu
module Reg = Cheri_isa.Reg
module Abi = Cheri_core.Abi
module K = Cheri_kernel.Kstate
module Proc = Cheri_kernel.Proc
module Exec = Cheri_kernel.Exec
module Signo = Cheri_kernel.Signo
module Signal_dispatch = Cheri_kernel.Signal_dispatch
module Errno = Cheri_kernel.Errno

(* A fault inside a runtime builtin, attributed to the process. *)
exception Rt_fault of int * string   (* signal, message *)

let ptr_fault msg = raise (Rt_fault (Signo.sigprot, msg))
let seg_fault msg = raise (Rt_fault (Signo.sigsegv, msg))
let asan_fault msg = raise (Rt_fault (Signo.sigabrt, msg))

(* --- Argument access (positional slots) ----------------------------------------- *)

type uref =
  | Rcap of Cap.t
  | Raddr of int

let arg_int (p : Proc.t) i = p.Proc.ctx.Cpu.gpr.(Reg.a0 + i)

let arg_ptr (p : Proc.t) i =
  match p.Proc.abi with
  | Abi.Cheriabi -> Rcap p.Proc.ctx.Cpu.creg.(Reg.ca0 + i)
  | Abi.Mips64 | Abi.Asan -> Raddr p.Proc.ctx.Cpu.gpr.(Reg.a0 + i)

let ref_addr = function
  | Rcap c -> Cap.addr c
  | Raddr a -> a

let ret_int (p : Proc.t) v = p.Proc.ctx.Cpu.gpr.(Reg.v0) <- v

let ret_ptr k (p : Proc.t) ~addr ~cap =
  p.Proc.ctx.Cpu.gpr.(Reg.v0) <- addr;
  match p.Proc.abi, cap with
  | Abi.Cheriabi, Some c -> p.Proc.ctx.Cpu.creg.(Reg.ca0) <- c
  | Abi.Cheriabi, None -> p.Proc.ctx.Cpu.creg.(Reg.ca0) <- Cap.null
  | (Abi.Mips64 | Abi.Asan), _ -> ignore k

(* Check that [r] authorizes an access of [len] with [perm]; returns the
   base address of the access. *)
let check_ref r ~perm ~len =
  match r with
  | Rcap c ->
    (try
       Cap.check_access_at c ~perm ~addr:(Cap.addr c) ~len;
       Cap.addr c
     with Cap.Cap_error v ->
       ptr_fault (Printf.sprintf "capability %s in C runtime"
                    (Cap.violation_to_string v)))
  | Raddr a -> a

(* --- Raw user memory helpers ------------------------------------------------------ *)

let touch (_k : K.t) p vaddr ~write =
  match Cheri_vm.Pmap.kernel_touch
          (Cheri_vm.Addr_space.pmap p.Proc.asp) vaddr ~write
  with
  | Some pa -> pa
  | None -> seg_fault (Printf.sprintf "unmapped address 0x%x in C runtime" vaddr)

let read_u8 k p vaddr = Cheri_tagmem.Tagmem.read_u8 k.K.mem (touch k p vaddr ~write:false)
let write_u8 k p vaddr v =
  Cheri_tagmem.Tagmem.write_u8 k.K.mem (touch k p vaddr ~write:true) v

(* --- ASan shadow ------------------------------------------------------------------- *)

let shadow_set k p addr len v =
  if len > 0 then begin
    let s0 = Exec.shadow_of addr and s1 = Exec.shadow_of (addr + len - 1) in
    for s = s0 to s1 do
      write_u8 k p s v
    done
  end

let shadow_check k p addr len what =
  if len > 0 then begin
    let s0 = Exec.shadow_of addr and s1 = Exec.shadow_of (addr + len - 1) in
    let rec go s =
      if s <= s1 then
        if read_u8 k p s <> 0 then
          asan_fault (Printf.sprintf "AddressSanitizer: %s at 0x%x" what addr)
        else go (s + 1)
    in
    go s0
  end

let is_asan (p : Proc.t) = p.Proc.abi = Abi.Asan

(* The print builtins write through descriptor 1 like printf would, so a
   forked child's output reaches the shared console/pipe/file. *)
let write_stdout k (p : Proc.t) data =
  match p.Proc.fds.(1) with
  | Some e ->
    (match e.Cheri_kernel.Vfs.fo_obj with
     | Cheri_kernel.Vfs.ODev d -> ignore (d.Cheri_kernel.Vfs.d_write data)
     | Cheri_kernel.Vfs.OFile f ->
       let n = Cheri_kernel.Vfs.file_write f ~off:e.Cheri_kernel.Vfs.fo_off data in
       e.Cheri_kernel.Vfs.fo_off <- e.Cheri_kernel.Vfs.fo_off + n
     | Cheri_kernel.Vfs.OPipe_w pipe | Cheri_kernel.Vfs.OSock (_, pipe) ->
       (try
          ignore (Cheri_kernel.Vfs.pipe_write pipe data);
          K.wake_pipe_waiters k pipe
        with Errno.Error _ -> ())
     | Cheri_kernel.Vfs.OPipe_r _ -> ())
  | None -> K.console_write k p data

(* --- Allocator entry points --------------------------------------------------------- *)

(* ASan adds 16-byte redzones around every allocation; the payload->base
   map lives with the rest of the per-heap allocator metadata (so fork
   and exec handle it like everything else). *)
let redzone = 16

let do_malloc k p len =
  if is_asan p then begin
    let base, _ = Malloc_impl.malloc k p (len + (2 * redzone)) in
    let payload = base + redzone in
    shadow_set k p base redzone 1;
    shadow_set k p payload len 0;
    shadow_set k p (payload + len) redzone 1;
    Malloc_impl.asan_register k p payload (base, len);
    K.charge k p (40 + (len / 32));
    payload, None
  end
  else Malloc_impl.malloc k p len

let do_free k p r =
  let addr = ref_addr r in
  if addr = 0 then ()
  else begin
    (match p.Proc.abi, r with
     | Abi.Cheriabi, Rcap c when not (Cap.is_tagged c) ->
       ptr_fault "free() of untagged capability"
     | _ -> ());
    if is_asan p then begin
      match Malloc_impl.asan_find k p addr with
      | None -> asan_fault "AddressSanitizer: invalid free"
      | Some (base, len) ->
        Malloc_impl.asan_remove k p addr;
        shadow_set k p addr len 1;   (* poison the freed payload *)
        (try ignore (Malloc_impl.free k p base)
         with Malloc_impl.Alloc_fault _ -> ())
    end
    else
      match Malloc_impl.free k p addr with
      | _ -> ()
      | exception Malloc_impl.Alloc_fault _ ->
        (* free() of a pointer malloc never returned. *)
        if p.Proc.abi = Abi.Cheriabi then
          ptr_fault "free() of pointer without matching allocation"
  end

let alloc_size k p addr =
  if is_asan p then
    match Malloc_impl.asan_find k p addr with
    | Some (_, len) -> Some len
    | None -> None
  else
    match Malloc_impl.lookup k p addr with
    | Some info -> Some info.Malloc_impl.ai_size
    | None -> None

(* --- Temporal safety: revocation sweep (paper 6, "Temporal safety") ------ *)

(* After freeing [base, top), clear the tag of every capability anywhere in
   the process (resident memory and the register file) that can still
   reach the freed region — the sweeping-revocation design CHERI enables
   through precise pointer identification. Returns the number revoked. *)
let revoke_range k (p : Proc.t) ~base ~top =
  let mem = k.K.mem in
  let pmap = Cheri_vm.Addr_space.pmap p.Proc.asp in
  let revoked = ref 0 in
  let pages = ref 0 in
  Cheri_vm.Pmap.iter_present pmap (fun _va frame ->
      incr pages;
      let pa = Cheri_tagmem.Phys.frame_addr frame in
      List.iter
        (fun off ->
          let c = Cheri_tagmem.Tagmem.read_cap mem (pa + off) in
          if Cap.is_tagged c && Cap.base c < top && Cap.top c > base then begin
            Cheri_tagmem.Tagmem.clear_tag mem (pa + off);
            incr revoked
          end)
        (Cheri_tagmem.Tagmem.scan_tags mem pa Cheri_tagmem.Phys.page_size));
  let ctx = p.Proc.ctx in
  Array.iteri
    (fun i c ->
      if i > 0 && Cap.is_tagged c && Cap.base c < top && Cap.top c > base
      then begin
        ctx.Cpu.creg.(i) <- Cap.clear_tag c;
        incr revoked
      end)
    ctx.Cpu.creg;
  (* The sweep visits every resident page: a real cost, charged as such. *)
  K.charge k p (200 + (!pages * 80));
  !revoked

let do_free_revoke k (p : Proc.t) r =
  let addr = ref_addr r in
  if addr <> 0 then begin
    let len =
      match alloc_size k p addr with
      | Some l -> l
      | None -> 0
    in
    do_free k p r;
    if p.Proc.abi = Abi.Cheriabi && len > 0 then
      ignore (revoke_range k p ~base:addr ~top:(addr + len))
  end

(* --- Memory builtins ------------------------------------------------------------------ *)

let granule = Cap.sizeof

(* Copy with tag preservation when fully capability-aligned — the
   capability-aware memcpy the paper's runtime requires (qsort, pointer
   propagation idioms). *)
let copy_user k p ~dst ~src ~len =
  if len > 0 then begin
    let aligned =
      dst land (granule - 1) = 0 && src land (granule - 1) = 0
      && len land (granule - 1) = 0
    in
    if aligned then begin
      let n = len / granule in
      (* Read all source granules first (raw bytes plus any tagged
         capability): overlap-safe, and untagged data survives intact. *)
      let tmp =
        Array.init n (fun i ->
            let pa = touch k p (src + (i * granule)) ~write:false in
            let bytes = Cheri_tagmem.Tagmem.read_bytes k.K.mem pa granule in
            let cap =
              if Cheri_tagmem.Tagmem.get_tag k.K.mem pa then
                Some (Cheri_tagmem.Tagmem.read_cap k.K.mem pa)
              else None
            in
            bytes, cap)
      in
      Array.iteri
        (fun i (bytes, cap) ->
          let pa = touch k p (dst + (i * granule)) ~write:true in
          Cheri_tagmem.Tagmem.blit_bytes k.K.mem ~dst:pa bytes;
          match cap with
          | Some c -> Cheri_tagmem.Tagmem.write_cap k.K.mem pa c
          | None -> ())
        tmp
    end
    else begin
      let tmp = Bytes.init len (fun i -> Char.chr (read_u8 k p (src + i))) in
      Bytes.iteri (fun i c -> write_u8 k p (dst + i) (Char.code c)) tmp
    end
  end;
  K.charge k p (24 + (len / 8) + (len / 64 * 2))

let do_memcpy k p =
  let dstr = arg_ptr p 0 and srcr = arg_ptr p 1 in
  let len = arg_int p 2 in
  if len < 0 then ptr_fault "memcpy with negative length";
  let dst = check_ref dstr ~perm:Perms.store ~len in
  let src = check_ref srcr ~perm:Perms.load ~len in
  if is_asan p then begin
    shadow_check k p src len "heap-buffer-overflow in memcpy (read)";
    shadow_check k p dst len "heap-buffer-overflow in memcpy (write)"
  end;
  copy_user k p ~dst ~src ~len;
  ret_ptr k p ~addr:dst
    ~cap:(match dstr with Rcap c -> Some c | Raddr _ -> None)

let do_memset k p =
  let dstr = arg_ptr p 0 in
  let byte = arg_int p 1 and len = arg_int p 2 in
  if len < 0 then ptr_fault "memset with negative length";
  let dst = check_ref dstr ~perm:Perms.store ~len in
  if is_asan p then shadow_check k p dst len "heap-buffer-overflow in memset";
  for i = 0 to len - 1 do
    write_u8 k p (dst + i) byte
  done;
  K.charge k p (16 + (len / 8));
  ret_ptr k p ~addr:dst
    ~cap:(match dstr with Rcap c -> Some c | Raddr _ -> None)

let do_strlen k p =
  let r = arg_ptr p 0 in
  let base = ref_addr r in
  let limit =
    match r with
    | Rcap c ->
      if not (Cap.is_tagged c) then ptr_fault "strlen of untagged capability";
      Cap.top c - base
    | Raddr _ -> 1 lsl 20
  in
  let rec go i =
    if i >= limit then
      (match r with
       | Rcap _ -> ptr_fault "strlen ran off the end of its capability"
       | Raddr _ -> seg_fault "strlen ran away")
    else if read_u8 k p (base + i) = 0 then i
    else go (i + 1)
  in
  let n = go 0 in
  K.charge k p (8 + n);
  ret_int p n

(* --- Output ------------------------------------------------------------------------------ *)

let do_print_str k p =
  let r = arg_ptr p 0 in
  let base = ref_addr r in
  let limit =
    match r with
    | Rcap c ->
      if not (Cap.is_tagged c) then ptr_fault "print of untagged capability";
      Cap.top c - base
    | Raddr _ -> 1 lsl 20
  in
  let buf = Buffer.create 32 in
  let rec go i =
    if i >= limit then
      (match r with
       | Rcap _ -> ptr_fault "unterminated string passed to print"
       | Raddr _ -> seg_fault "unterminated string")
    else
      let c = read_u8 k p (base + i) in
      if c = 0 then ()
      else begin
        Buffer.add_char buf (Char.chr c);
        go (i + 1)
      end
  in
  go 0;
  write_stdout k p (Buffer.to_bytes buf);
  K.charge k p (20 + Buffer.length buf)

(* --- Dispatch -------------------------------------------------------------------------------- *)

let dispatch k (p : Proc.t) n =
  try
    if n = Rtnum.rt_malloc then begin
      let addr, cap = do_malloc k p (arg_int p 0) in
      ret_ptr k p ~addr ~cap
    end
    else if n = Rtnum.rt_free then do_free k p (arg_ptr p 0)
    else if n = Rtnum.rt_free_revoke then do_free_revoke k p (arg_ptr p 0)
    else if n = Rtnum.rt_calloc then begin
      let len = arg_int p 0 * arg_int p 1 in
      let addr, cap = do_malloc k p len in
      for i = 0 to (len - 1) / 8 do
        let pa = touch k p (addr + (i * 8)) ~write:true in
        Cheri_tagmem.Tagmem.write_int k.K.mem pa ~len:8 0
      done;
      K.charge k p (len / 8);
      ret_ptr k p ~addr ~cap
    end
    else if n = Rtnum.rt_realloc then begin
      let r = arg_ptr p 0 and len = arg_int p 1 in
      let old_addr = ref_addr r in
      if old_addr = 0 then begin
        let addr, cap = do_malloc k p len in
        ret_ptr k p ~addr ~cap
      end
      else begin
        let old_len =
          match alloc_size k p old_addr with
          | Some l -> l
          | None ->
            if p.Proc.abi = Abi.Cheriabi then
              ptr_fault "realloc of pointer without matching allocation"
            else 0
        in
        let addr, cap = do_malloc k p len in
        copy_user k p ~dst:addr ~src:old_addr ~len:(min old_len len);
        do_free k p r;
        ret_ptr k p ~addr ~cap
      end
    end
    else if n = Rtnum.rt_memcpy || n = Rtnum.rt_memmove then do_memcpy k p
    else if n = Rtnum.rt_memset then do_memset k p
    else if n = Rtnum.rt_print_int then begin
      write_stdout k p (Bytes.of_string (string_of_int (arg_int p 0)));
      K.charge k p 30
    end
    else if n = Rtnum.rt_print_char then begin
      write_stdout k p (Bytes.make 1 (Char.chr (arg_int p 0 land 0xff)));
      K.charge k p 10
    end
    else if n = Rtnum.rt_print_hex then begin
      write_stdout k p (Bytes.of_string (Printf.sprintf "0x%x" (arg_int p 0)));
      K.charge k p 30
    end
    else if n = Rtnum.rt_print_str then do_print_str k p
    else if n = Rtnum.rt_strlen then do_strlen k p
    else begin
      Proc.log_fault p (Printf.sprintf "unknown runtime builtin %d" n);
      K.exit_proc k p (Proc.Signaled Signo.sigill)
    end
  with
  | Rt_fault (sig_, msg) ->
    Proc.log_fault p msg;
    Proc.post_signal p sig_;
    ignore (Signal_dispatch.deliver_pending k p)
  | Malloc_impl.Alloc_fault e ->
    Proc.log_fault p ("allocator: " ^ Errno.to_string e);
    ret_ptr k p ~addr:0 ~cap:None

(* Install the dispatcher into a booted kernel. The allocator lifecycle
   hooks (heap eviction on exit/execve, metadata copy on fork) are wired
   eagerly here — and lazily by the allocator itself on first use, for
   callers that drive [Malloc_impl] without a runtime. *)
let install k =
  k.K.rt_handler <- Some dispatch;
  k.K.on_asp_destroy <- Some (fun k pr -> Malloc_impl.evict k ~principal:pr);
  k.K.on_fork <-
    Some (fun k parent child -> Malloc_impl.fork_heap k ~parent ~child);
  (* ASan: freshly mapped heap is entirely poisoned; allocations unpoison
     their payloads. *)
  Malloc_impl.set_on_map k
    (fun k p base len -> if is_asan p then shadow_set k p base len 1)
