(* capptr_bound-style typed narrowing for heap capabilities (snmalloc's
   StrictProvenance discipline, applied to the paper's §4 heap rules).

   The allocator holds exactly two ranks of authority:

   - [chunk]: the VMMAP-bearing capability returned by mmap for a whole
     arena chunk (or large region). Never escapes the allocator.
   - [alloc]: the object capability handed to user code — rebounded from
     a chunk parent, data permissions only.

   The only way to make an [alloc] is [bound], and [bound] is
   *address-only*: the caller contributes nothing but an integer address
   and a length, while tag, provenance and permissions all flow from the
   chunk parent. The narrowing uses compression-exact CSetBounds
   ([Cap.set_bounds ~exact]), so a representability rounding that would
   silently widen the object raises instead of shipping overlapping
   bounds. Tag amplification is impossible by construction: an untagged
   parent raises [Discipline], and no path ever re-tags. *)

module Cap = Cheri_cap.Cap
module Perms = Cheri_cap.Perms
module Compress = Cheri_cap.Compress

type chunk = Chunk of Cap.t
type alloc = Alloc of Cap.t

exception Discipline of string

(* Heap-pointer permissions: data access only — no VMMAP, no EXECUTE. *)
let heap_perms = Perms.data

(* Admit an mmap result as chunk authority. It must be a valid (tagged,
   unsealed) capability that still carries VMMAP — that is how we know it
   came from the mapping path and not from user data. *)
let of_mmap c =
  if not (Cap.is_tagged c) then raise (Discipline "untagged chunk capability");
  if not (Perms.has (Cap.perms c) Perms.vmmap) then
    raise (Discipline "chunk capability lost VMMAP");
  Chunk c

(* Admit the address-space root as chunk authority (legacy fallback used
   when a chunk predates capability-bearing mmap results). *)
let of_root c =
  if not (Cap.is_tagged c) then raise (Discipline "untagged root capability");
  Chunk c

(* Address-only rebound: derive the object capability for
   [addr, addr+len) from the chunk parent. [len] must already be
   CRRL-rounded by the caller (the class table guarantees it for small
   objects); [~exact] then makes any residual representability slack a
   hard error instead of a bounds widening. *)
let bound (Chunk parent) ~addr ~len =
  if not (Cap.is_tagged parent) then raise (Discipline "untagged parent");
  if Compress.crrl len <> len then
    raise (Discipline "bound length not CRRL-exact");
  let c = Cap.set_bounds ~exact:true (Cap.set_addr parent addr) ~len in
  let c = Cap.and_perms c heap_perms in
  (* Post-conditions of the discipline; violations are allocator bugs. *)
  if not (Cap.is_tagged c) then raise (Discipline "narrowing lost the tag");
  assert (Cap.base c = addr && Cap.length c = len);
  assert (not (Perms.has (Cap.perms c) Perms.vmmap));
  assert (not (Perms.has (Cap.perms c) Perms.execute));
  Alloc c

(* Unwrap for delivery to user registers / test assertions. *)
let to_cap (Alloc c) = c
let chunk_cap (Chunk c) = c

(* Does [c] satisfy the discipline for an object at [addr] of rounded
   length [len]? Used by the property tests on every returned pointer. *)
let obeys c ~addr ~len =
  Cap.is_tagged c
  && Cap.base c = addr
  && Cap.length c = len
  && Compress.crrl len = len
  && not (Perms.has (Cap.perms c) Perms.vmmap)
  && not (Perms.has (Cap.perms c) Perms.execute)
  && Perms.has (Cap.perms c) Perms.load
  && Perms.has (Cap.perms c) Perms.store
