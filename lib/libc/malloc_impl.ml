(* The userspace allocator: a snmalloc-shaped sharded size-class allocator
   (§4, "Dynamic allocations" + the ROADMAP's exact-bounds discipline).

   Shape of the design (docs/ALLOC.md has the full argument):

   - Allocator state is *per machine*: it hangs off [Kstate.rt_alloc]
     (one kernel = one machine = one fleet worker domain), so nothing the
     allocator touches is shared across OCaml domains. The old design
     kept one global arena table for every machine in the process — an
     unsynchronized race once the fleet layer went multicore.
   - Each address space (keyed by principal, so execve gets a fresh heap)
     owns a small array of shards. A process allocates from its affinity
     shard (pid mod nshards); chunks record the shard that carved them.
   - free() from a non-owning shard context does not touch the owner's
     free lists: it enqueues the slot on the owner's lock-free remote
     queue (message-passing frees). The owner drains its queue at its
     next malloc — snmalloc's discipline.
   - Tag sweeps happen when an object *changes owner*, not on every
     free: a locally-freed slot parks dirty on the free list and is swept
     when reused (reuse is an ownership change: old allocation -> new);
     a remotely-freed slot is swept once when the owner drains it and
     parks clean. Either way a recycled allocation can never read a
     capability its previous owner left behind.
   - Every returned capability is rebounded address-only from the chunk
     parent via compression-exact CSetBounds ([Capptr.bound]) — never
     tag amplification — with VMMAP and EXECUTE stripped.
   - Small classes are chosen by *representable* length: the class
     invariant [Compress.crrl len <= class size] is statically asserted,
     so representability rounding can never widen an object's bounds
     into its neighbour. *)

module Cap = Cheri_cap.Cap
module Compress = Cheri_cap.Compress
module Abi = Cheri_core.Abi
module Addr_space = Cheri_vm.Addr_space
module Pmap = Cheri_vm.Pmap
module Tagmem = Cheri_tagmem.Tagmem
module K = Cheri_kernel.Kstate
module Proc = Cheri_kernel.Proc
module Sys_impl = Cheri_kernel.Sys_impl
module Sysno = Cheri_kernel.Sysno
module Uarg = Cheri_kernel.Uarg
module Errno = Cheri_kernel.Errno

let chunk_size = 64 * 1024

(* Each chunk starts with a small header, as jemalloc's do; allocations
   never sit at the very start of a mapping. *)
let chunk_header = 16

(* Small classes now extend past the page: everything up to 32 KiB is
   class-allocated (the >8 KiB classes exercise non-trivial CRRL
   rounding), beyond that an allocation maps its own region. *)
let size_classes =
  [| 16; 32; 48; 64; 96; 128; 192; 256; 384; 512; 768; 1024; 1536; 2048;
     3072; 4096; 6144; 8192; 12288; 16384; 24576; 32768 |]

let nclasses = Array.length size_classes

(* The class-table soundness predicate, exposed so tests can show what a
   bad table (e.g. a non-representable class size) would violate:
   ascending, 16-aligned slots (so every carved base is aligned at least
   as strictly as CRAM demands for any class length), each class size
   exactly representable ([crrl c = c]; this is what makes "pick the
   class by crrl of the request" sound — bounds never exceed the slot),
   and each class must fit a chunk. *)
let class_table_ok tbl =
  let n = Array.length tbl in
  let ok = ref (n > 0) in
  for i = 0 to n - 1 do
    let c = tbl.(i) in
    if c <= 0 || c mod 16 <> 0 then ok := false;
    if Compress.crrl c <> c then ok := false;
    if chunk_header + c > chunk_size then ok := false;
    if i > 0 && tbl.(i - 1) >= c then ok := false;
    (* The CRAM alignment for any length served by this class divides the
       16-byte carve granularity. *)
    if lnot (Compress.cram c) land 15 <> lnot (Compress.cram c) then ok := false
  done;
  !ok

let () = assert (class_table_ok size_classes)

(* Class lookup by *representable* length: callers pass [crrl len], and
   the invariant above guarantees the slot covers the rounded bounds. *)
let class_of_size n =
  let rec go i =
    if i >= nclasses then None
    else if size_classes.(i) >= n then Some i
    else go (i + 1)
  in
  go 0

(* How many shards per heap. Affinity is pid-based, so a forked child
   lands on a different shard than its parent 3 times out of 4 — that is
   what generates cross-shard (remote) frees on inherited objects. *)
let nshards = 4

let affinity (p : Proc.t) = p.Proc.pid mod nshards

type chunk = {
  ck_base : int;
  ck_len : int;
  ck_parent : Capptr.chunk option;  (* the VMMAP-bearing mmap capability *)
  mutable ck_next : int;            (* bump pointer for carving runs *)
  mutable ck_shard : int;           (* owning shard (changes on adoption) *)
}

type alloc_info = {
  ai_size : int;               (* requested size *)
  ai_class : int;              (* -1 = large (own mapping) *)
}

(* Remote-queue entries pack (address, class) into one int so the queue
   is a plain [int list Atomic.t]. *)
let enc_slot addr ci = (addr lsl 6) lor ci
let dec_slot e = (e lsr 6, e land 63)

type shard = {
  sh_id : int;
  (* Per-class free lists of (address, clean?). A dirty slot still holds
     its previous owner's tags and is swept on reuse; a clean slot was
     swept when it crossed shards. *)
  sh_free : (int * bool) list array;
  (* Lock-free message-passing remote-free queue (Treiber push / swap
     drain): a free from a non-owning shard context lands here. *)
  sh_remote : int list Atomic.t;
  mutable sh_mallocs : int;
  mutable sh_frees : int;            (* frees performed in this shard context *)
  mutable sh_remote_enq : int;       (* slots enqueued TO this shard *)
  mutable sh_remote_drained : int;
  mutable sh_drains : int;           (* non-empty drain batches *)
  mutable sh_owner_sweeps : int;     (* sweeps at ownership change (drain) *)
  mutable sh_reuse_sweeps : int;     (* sweeps of dirty slots at reuse *)
  mutable sh_adoptions : int;        (* chunks adopted from sibling shards *)
}

let mk_shard id =
  { sh_id = id; sh_free = Array.make nclasses [];
    sh_remote = Atomic.make [];
    sh_mallocs = 0; sh_frees = 0; sh_remote_enq = 0; sh_remote_drained = 0;
    sh_drains = 0; sh_owner_sweeps = 0; sh_reuse_sweeps = 0;
    sh_adoptions = 0 }

type heap = {
  h_abi : Abi.t;
  h_shards : shard array;
  mutable h_chunks : chunk list;
  (* Interval index: page number -> owning chunk, so the per-allocation
     parent-capability lookup is O(1) instead of a chunk-list walk. *)
  h_chunk_pages : (int, chunk) Hashtbl.t;
  h_live : (int, alloc_info) Hashtbl.t;
  (* ASan bookkeeping (payload -> redzoned base/len), kept here so it is
     evicted/forked together with the rest of the heap metadata. *)
  h_asan : (int, int * int) Hashtbl.t;
  mutable h_tags_cleared : int;  (* stale capabilities swept *)
  mutable h_unmap_leaks : int;   (* large frees whose unmap failed *)
}

let mk_heap abi =
  { h_abi = abi; h_shards = Array.init nshards mk_shard;
    h_chunks = []; h_chunk_pages = Hashtbl.create 64;
    h_live = Hashtbl.create 64; h_asan = Hashtbl.create 16;
    h_tags_cleared = 0; h_unmap_leaks = 0 }

(* Machine-lifetime counter totals; evicted heaps fold into these so the
   fleet's quiesce gates see the whole history, not just surviving heaps. *)
type totals = {
  mutable t_mallocs : int;
  mutable t_frees : int;
  mutable t_remote_enq : int;
  mutable t_remote_drained : int;
  mutable t_drains : int;
  mutable t_owner_sweeps : int;
  mutable t_reuse_sweeps : int;
  mutable t_adoptions : int;
  mutable t_tags_cleared : int;
  mutable t_unmap_leaks : int;
}

let mk_totals () =
  { t_mallocs = 0; t_frees = 0; t_remote_enq = 0; t_remote_drained = 0;
    t_drains = 0; t_owner_sweeps = 0; t_reuse_sweeps = 0; t_adoptions = 0;
    t_tags_cleared = 0; t_unmap_leaks = 0 }

(* Whole-machine allocator state, anchored in [Kstate.rt_alloc]. *)
type t = {
  heaps : (int, heap) Hashtbl.t;      (* address-space principal -> heap *)
  retired : totals;
  mutable evicted : int;
  (* Invoked whenever the allocator maps fresh memory (arena chunks,
     large regions). The ASan runtime uses it to poison unallocated
     heap. Per-machine, like everything else here. *)
  mutable on_map : (K.t -> Proc.t -> int -> int -> unit) option;
}

type K.rt_ext += Alloc_state of t

let state (k : K.t) =
  match k.K.rt_alloc with
  | Some (Alloc_state st) -> st
  | _ ->
    let st =
      { heaps = Hashtbl.create 16; retired = mk_totals (); evicted = 0;
        on_map = None }
    in
    k.K.rt_alloc <- Some (Alloc_state st);
    st

let set_on_map k f = (state k).on_map <- Some f

let notify_map k p base len =
  match (state k).on_map with Some f -> f k p base len | None -> ()

let heap_find st (p : Proc.t) =
  Hashtbl.find_opt st.heaps (Addr_space.principal p.Proc.asp)

let heap_of st (p : Proc.t) =
  let key = Addr_space.principal p.Proc.asp in
  match Hashtbl.find_opt st.heaps key with
  | Some h -> h
  | None ->
    let h = mk_heap p.Proc.abi in
    Hashtbl.replace st.heaps key h;
    h

exception Alloc_fault of Errno.t

let page_shift = Cheri_tagmem.Phys.page_shift

(* Register every page of a fresh chunk in the interval index. *)
let index_chunk h ck =
  let first = ck.ck_base lsr page_shift
  and last = (ck.ck_base + ck.ck_len - 1) lsr page_shift in
  for pg = first to last do
    Hashtbl.replace h.h_chunk_pages pg ck
  done

(* O(1) via the page index: a page belongs to at most one chunk. *)
let chunk_for h addr =
  match Hashtbl.find_opt h.h_chunk_pages (addr lsr page_shift) with
  | Some ck when addr >= ck.ck_base && addr < ck.ck_base + ck.ck_len ->
    Some ck
  | _ -> None

let chunk_parent_for h addr =
  match chunk_for h addr with Some ck -> ck.ck_parent | None -> None

(* Sweep stale capabilities off an object: clear every tag covering
   [addr, addr+len). Without this a recycled allocation can read a tagged
   capability left behind by its previous owner — the heap capability-leak
   class that CHERI temporal-safety work (CHERIvoke / Cornucopia) targets.
   Only resident pages can carry tags (zero-fill and swap-in rewrite the
   others), so the sweep never faults anything in. It goes through
   [Pmap.private_pa]: after fork the object's page may still sit on a
   COW frame shared with the peer process, and sweeping through the
   shared frame would strip the *peer's* capabilities too. *)
let sweep_object (p : Proc.t) addr len =
  let pmap = Addr_space.pmap p.Proc.asp in
  let mem = Pmap.mem pmap in
  let page = Addr_space.page_size in
  let cleared = ref 0 in
  let first = addr lsr page_shift and last = (addr + len - 1) lsr page_shift in
  for pg = first to last do
    let va = pg * page in
    match Pmap.private_pa pmap va with
    | None -> ()
    | Some pa ->
      let lo = max addr va and hi = min (addr + len) (va + page) in
      cleared :=
        !cleared + Tagmem.clear_tags_covering_count mem (pa + (lo - va)) (hi - lo)
  done;
  !cleared

(* --- Lock-free remote queue ------------------------------------------------------ *)

let rec rq_push q v =
  let old = Atomic.get q in
  if not (Atomic.compare_and_set q old (v :: old)) then rq_push q v

(* Swap the whole queue out; reversed so drain order is enqueue order. *)
let rq_drain q = List.rev (Atomic.exchange q [])

let rq_pending q = List.length (Atomic.get q)

(* Owner-side drain of [sh]'s remote queue: each slot crossed shards, so
   this is the ownership-change point — sweep it exactly once and park it
   clean on the owner's free list. *)
let drain_shard k p h (sh : shard) =
  match rq_drain sh.sh_remote with
  | [] -> ()
  | items ->
    sh.sh_drains <- sh.sh_drains + 1;
    List.iter
      (fun e ->
        let addr, ci = dec_slot e in
        h.h_tags_cleared <-
          h.h_tags_cleared + sweep_object p addr size_classes.(ci);
        sh.sh_owner_sweeps <- sh.sh_owner_sweeps + 1;
        sh.sh_remote_drained <- sh.sh_remote_drained + 1;
        sh.sh_free.(ci) <- (addr, true) :: sh.sh_free.(ci);
        K.charge k p 4)
      items

(* --- Growing --------------------------------------------------------------------- *)

(* Acquire a chunk through the mmap syscall path (paying its costs and,
   under CheriABI, receiving a VMMAP capability), owned by [sh]. *)
let grow k (p : Proc.t) h (sh : shard) =
  let args =
    [ Uarg.UPtr (Uarg.Uaddr 0); Uarg.UInt chunk_size;
      Uarg.UInt (Sysno.prot_read lor Sysno.prot_write);
      Uarg.UInt Sysno.map_anon; Uarg.UInt (-1); Uarg.UInt 0 ]
  in
  let mk base parent =
    let ck = { ck_base = base; ck_len = chunk_size; ck_parent = parent;
               ck_next = base + chunk_header; ck_shard = sh.sh_id } in
    h.h_chunks <- ck :: h.h_chunks;
    index_chunk h ck;
    notify_map k p base chunk_size;
    ck
  in
  match Sys_impl.sys_mmap k p args with
  | Sys_impl.RPtr (Uarg.Uaddr base) -> mk base None
  | Sys_impl.RPtr (Uarg.Ucap c) -> mk (Cap.base c) (Some (Capptr.of_mmap c))
  | Sys_impl.RInt _ | Sys_impl.RNone -> raise (Alloc_fault Errno.ENOMEM)

(* Map a dedicated region for a large allocation, CRRL-rounded so the
   bounds are exact. *)
let map_large k p len =
  let rlen = Compress.crrl len in
  let args =
    [ Uarg.UPtr (Uarg.Uaddr 0); Uarg.UInt rlen;
      Uarg.UInt (Sysno.prot_read lor Sysno.prot_write);
      Uarg.UInt Sysno.map_anon; Uarg.UInt (-1); Uarg.UInt 0 ]
  in
  match Sys_impl.sys_mmap k p args with
  | Sys_impl.RPtr (Uarg.Uaddr base) ->
    notify_map k p base (Addr_space.page_align_up rlen);
    base, None
  | Sys_impl.RPtr (Uarg.Ucap c) ->
    notify_map k p (Cap.base c) (Addr_space.page_align_up rlen);
    Cap.base c, Some (Capptr.of_mmap c)
  | Sys_impl.RInt _ | Sys_impl.RNone -> raise (Alloc_fault Errno.ENOMEM)

(* Carve one object of class [ci] out of a chunk owned by [sh]. *)
let carve k p h (sh : shard) ci =
  let size = size_classes.(ci) in
  let rec find = function
    | ck :: rest ->
      if ck.ck_shard = sh.sh_id
         && ck.ck_next + size <= ck.ck_base + ck.ck_len
      then begin
        let addr = ck.ck_next in
        ck.ck_next <- addr + size;
        addr, ck.ck_parent
      end
      else find rest
    | [] ->
      let ck = grow k p h sh in
      let addr = ck.ck_next in
      ck.ck_next <- addr + size;
      addr, ck.ck_parent
  in
  find h.h_chunks

(* Pop a slot off [sh]'s class-[ci] free list; dirty slots (freed locally,
   never crossed shards) are swept here — reuse is the ownership change. *)
let pop_slot p h (sh : shard) ci =
  match sh.sh_free.(ci) with
  | [] -> None
  | (addr, clean) :: rest ->
    sh.sh_free.(ci) <- rest;
    if not clean then begin
      h.h_tags_cleared <-
        h.h_tags_cleared + sweep_object p addr size_classes.(ci);
      sh.sh_reuse_sweeps <- sh.sh_reuse_sweeps + 1
    end;
    Some (addr, chunk_parent_for h addr)

(* Does any sibling shard hold state worth adopting? (Pending remote
   slots, parked free slots, or chunks with carve room.) *)
let sibling_has_state h (aff : shard) =
  Array.exists
    (fun (s : shard) ->
      s.sh_id <> aff.sh_id
      && (Atomic.get s.sh_remote <> []
          || Array.exists (fun l -> l <> []) s.sh_free))
    h.h_shards
  || List.exists (fun ck -> ck.ck_shard <> aff.sh_id) h.h_chunks

(* Adopt every sibling shard's state into [aff]. Within one heap only the
   owning process allocates, so sibling shards are "dead allocators" in
   snmalloc terms (they belonged to the pre-fork / pre-exec process):
   when the affinity shard misses its free list it first settles their
   queues (owner-change sweeps) and takes over their chunks and parked
   slots, rather than growing the heap past memory it could recycle. *)
let adopt k p h (aff : shard) =
  Array.iter
    (fun (s : shard) ->
      if s.sh_id <> aff.sh_id then begin
        drain_shard k p h s;
        Array.iteri
          (fun ci l ->
            if l <> [] then begin
              aff.sh_free.(ci) <- aff.sh_free.(ci) @ l;
              s.sh_free.(ci) <- []
            end)
          s.sh_free
      end)
    h.h_shards;
  List.iter
    (fun ck ->
      if ck.ck_shard <> aff.sh_id then begin
        ck.ck_shard <- aff.sh_id;
        aff.sh_adoptions <- aff.sh_adoptions + 1;
        K.charge k p 12
      end)
    h.h_chunks

(* --- Lifecycle hooks ------------------------------------------------------------- *)

let fold_heap_into (t : totals) (h : heap) =
  Array.iter
    (fun (s : shard) ->
      t.t_mallocs <- t.t_mallocs + s.sh_mallocs;
      t.t_frees <- t.t_frees + s.sh_frees;
      t.t_remote_enq <- t.t_remote_enq + s.sh_remote_enq;
      t.t_remote_drained <- t.t_remote_drained + s.sh_remote_drained;
      t.t_drains <- t.t_drains + s.sh_drains;
      t.t_owner_sweeps <- t.t_owner_sweeps + s.sh_owner_sweeps;
      t.t_reuse_sweeps <- t.t_reuse_sweeps + s.sh_reuse_sweeps;
      t.t_adoptions <- t.t_adoptions + s.sh_adoptions)
    h.h_shards;
  t.t_tags_cleared <- t.t_tags_cleared + h.h_tags_cleared;
  t.t_unmap_leaks <- t.t_unmap_leaks + h.h_unmap_leaks

(* Evict the heap of a dying address space (exit or execve). The remote
   queues are drained for accounting — the quiesce invariant is that
   every enqueued slot is eventually drained — but not swept: the whole
   space is being torn down. Counters fold into the machine totals so
   they survive the heap. *)
let evict k ~principal =
  match k.K.rt_alloc with
  | Some (Alloc_state st) ->
    (match Hashtbl.find_opt st.heaps principal with
     | None -> ()
     | Some h ->
       Array.iter
         (fun (sh : shard) ->
           let n = List.length (rq_drain sh.sh_remote) in
           if n > 0 then begin
             sh.sh_drains <- sh.sh_drains + 1;
             sh.sh_remote_drained <- sh.sh_remote_drained + n
           end)
         h.h_shards;
       fold_heap_into st.retired h;
       Hashtbl.remove st.heaps principal;
       st.evicted <- st.evicted + 1)
  | _ -> ()

(* Fork: the child's pages were just COW'd, so its fresh address-space
   principal must start with a deep copy of the parent's heap metadata —
   chunks (including shard ownership: the child's different affinity is
   what makes frees of inherited objects remote), live table, parked
   free slots and ASan info. Parent queues are settled first so the copy
   starts quiescent; child counters start at zero. *)
let fork_heap k ~(parent : Proc.t) ~(child : Proc.t) =
  let st = state k in
  match heap_find st parent with
  | None -> ()
  | Some h ->
    Array.iter (fun sh -> drain_shard k parent h sh) h.h_shards;
    let ch = mk_heap h.h_abi in
    ch.h_chunks <- List.map (fun ck -> { ck with ck_base = ck.ck_base }) h.h_chunks;
    List.iter (fun ck -> index_chunk ch ck) (List.rev ch.h_chunks);
    Hashtbl.iter (Hashtbl.replace ch.h_live) h.h_live;
    Hashtbl.iter (Hashtbl.replace ch.h_asan) h.h_asan;
    Array.iteri
      (fun i (s : shard) ->
        Array.blit s.sh_free 0 ch.h_shards.(i).sh_free 0 nclasses)
      h.h_shards;
    Hashtbl.replace st.heaps (Addr_space.principal child.Proc.asp) ch

let ensure k =
  let st = state k in
  (match k.K.on_asp_destroy with
   | None -> k.K.on_asp_destroy <- Some (fun k pr -> evict k ~principal:pr)
   | Some _ -> ());
  (match k.K.on_fork with
   | None ->
     k.K.on_fork <- Some (fun k parent child -> fork_heap k ~parent ~child)
   | Some _ -> ());
  st

(* --- malloc / free --------------------------------------------------------------- *)

(* Allocate [len] bytes; returns (address, CheriABI capability option). *)
let malloc k (p : Proc.t) len =
  if len < 0 then raise (Alloc_fault Errno.EINVAL);
  let len = max len 1 in
  let st = ensure k in
  let h = heap_of st p in
  let aff = h.h_shards.(affinity p) in
  (* snmalloc discipline: the owner services its message queue on the
     way into every allocation. *)
  drain_shard k p h aff;
  aff.sh_mallocs <- aff.sh_mallocs + 1;
  let rlen = Compress.crrl len in
  let addr, parent, ci, blen =
    match class_of_size rlen with
    | Some ci ->
      let addr, parent =
        match pop_slot p h aff ci with
        | Some r -> r
        | None ->
          if sibling_has_state h aff then adopt k p h aff;
          (match pop_slot p h aff ci with
           | Some r -> r
           | None -> carve k p h aff ci)
      in
      addr, parent, ci, rlen
    | None ->
      let base, cap = map_large k p len in
      base, cap, -1, rlen
  in
  Hashtbl.replace h.h_live addr { ai_size = len; ai_class = ci };
  K.charge k p (90 + (len / 64));
  match h.h_abi with
  | Abi.Mips64 | Abi.Asan -> addr, None
  | Abi.Cheriabi ->
    let parent =
      match parent with
      | Some c -> c
      | None -> Capptr.of_root (Addr_space.root_cap p.Proc.asp)
    in
    (* Address-only rebound from the chunk parent; bounds match the
       request, rounded only as representability forces, and the class
       invariant guarantees [blen] fits the slot. *)
    let c = Capptr.to_cap (Capptr.bound parent ~addr ~len:blen) in
    K.trace_grant k p ~origin:"malloc" c;
    addr, Some c

let free k (p : Proc.t) addr =
  let st = ensure k in
  let h = heap_of st p in
  match Hashtbl.find_opt h.h_live addr with
  | None -> raise (Alloc_fault Errno.EINVAL)   (* invalid / double free *)
  | Some info ->
    Hashtbl.remove h.h_live addr;
    K.charge k p 60;
    let aff = h.h_shards.(affinity p) in
    aff.sh_frees <- aff.sh_frees + 1;
    if info.ai_class >= 0 then begin
      let owner =
        match chunk_for h addr with
        | Some ck -> ck.ck_shard
        | None -> aff.sh_id
      in
      if owner = aff.sh_id then
        (* Local free: park dirty; the sweep happens at reuse. *)
        aff.sh_free.(info.ai_class) <-
          (addr, false) :: aff.sh_free.(info.ai_class)
      else begin
        (* Cross-shard free: message-pass the slot to its owner. *)
        let o = h.h_shards.(owner) in
        rq_push o.sh_remote (enc_slot addr info.ai_class);
        o.sh_remote_enq <- o.sh_remote_enq + 1
      end
    end
    else begin
      (* Large allocation: its dedicated region dies right now, so this
         *is* the ownership-change point — sweep, then unmap. map_large
         mapped a page-aligned span, so unmap the same page-aligned
         length; a failed unmap is a real leak and is counted, not
         swallowed. *)
      let rlen = Compress.crrl info.ai_size in
      h.h_tags_cleared <- h.h_tags_cleared + sweep_object p addr rlen;
      let plen = Addr_space.page_align_up rlen in
      (try Addr_space.unmap p.Proc.asp ~start:addr ~len:plen
       with Addr_space.Map_error _ -> h.h_unmap_leaks <- h.h_unmap_leaks + 1)
    end;
    info

(* Look up a live allocation; [None] for addresses malloc never returned. *)
let lookup k (p : Proc.t) addr =
  match heap_find (state k) p with
  | None -> None
  | Some h -> Hashtbl.find_opt h.h_live addr

(* --- ASan bookkeeping ------------------------------------------------------------ *)

let asan_register k (p : Proc.t) payload span =
  Hashtbl.replace (heap_of (state k) p).h_asan payload span

let asan_find k (p : Proc.t) payload =
  match heap_find (state k) p with
  | None -> None
  | Some h -> Hashtbl.find_opt h.h_asan payload

let asan_remove k (p : Proc.t) payload =
  match heap_find (state k) p with
  | None -> ()
  | Some h -> Hashtbl.remove h.h_asan payload

(* --- Statistics ------------------------------------------------------------------ *)

type arena_stats = {
  st_mallocs : int;
  st_frees : int;
  st_live : int;
  st_tags_cleared : int;    (* stale capabilities swept *)
  st_unmap_leaks : int;     (* large frees whose unmap failed *)
  st_remote_enq : int;      (* cross-shard frees enqueued *)
  st_remote_drained : int;  (* remote slots drained by their owner *)
  st_drains : int;          (* non-empty drain batches *)
  st_owner_sweeps : int;    (* sweeps at ownership change *)
  st_reuse_sweeps : int;    (* sweeps of dirty slots at reuse *)
  st_adoptions : int;       (* chunks adopted across shards *)
  st_pending_remote : int;  (* slots still parked on remote queues *)
}

let zero_stats =
  { st_mallocs = 0; st_frees = 0; st_live = 0; st_tags_cleared = 0;
    st_unmap_leaks = 0; st_remote_enq = 0; st_remote_drained = 0;
    st_drains = 0; st_owner_sweeps = 0; st_reuse_sweeps = 0;
    st_adoptions = 0; st_pending_remote = 0 }

let stats k (p : Proc.t) =
  match heap_find (state k) p with
  | None -> zero_stats
  | Some h ->
    let t = mk_totals () in
    fold_heap_into t h;
    let pending =
      Array.fold_left (fun acc s -> acc + rq_pending s.sh_remote) 0 h.h_shards
    in
    { st_mallocs = t.t_mallocs; st_frees = t.t_frees;
      st_live = Hashtbl.length h.h_live;
      st_tags_cleared = t.t_tags_cleared; st_unmap_leaks = t.t_unmap_leaks;
      st_remote_enq = t.t_remote_enq; st_remote_drained = t.t_remote_drained;
      st_drains = t.t_drains; st_owner_sweeps = t.t_owner_sweeps;
      st_reuse_sweeps = t.t_reuse_sweeps; st_adoptions = t.t_adoptions;
      st_pending_remote = pending }

type shard_stats = {
  ss_id : int;
  ss_mallocs : int;
  ss_frees : int;
  ss_remote_enq : int;
  ss_remote_drained : int;
  ss_drains : int;
  ss_owner_sweeps : int;
  ss_reuse_sweeps : int;
  ss_adoptions : int;
  ss_pending : int;
}

let shard_stats k (p : Proc.t) =
  match heap_find (state k) p with
  | None -> [||]
  | Some h ->
    Array.map
      (fun (s : shard) ->
        { ss_id = s.sh_id; ss_mallocs = s.sh_mallocs; ss_frees = s.sh_frees;
          ss_remote_enq = s.sh_remote_enq;
          ss_remote_drained = s.sh_remote_drained; ss_drains = s.sh_drains;
          ss_owner_sweeps = s.sh_owner_sweeps;
          ss_reuse_sweeps = s.sh_reuse_sweeps; ss_adoptions = s.sh_adoptions;
          ss_pending = rq_pending s.sh_remote })
      h.h_shards

(* Number of heaps currently tracked by this machine (the arena-leak
   regression asserts this returns to baseline after an exec/exit loop). *)
let heap_count k = Hashtbl.length (state k).heaps

(* Machine-lifetime counters (live heaps folded with retired totals), as
   a fixed-order assoc list — printed into fleet snapshots, so the
   1-vs-N-domain equality gate covers allocator behaviour bit-for-bit. *)
let machine_counters k =
  let st = state k in
  let t =
    { st.retired with t_mallocs = st.retired.t_mallocs }  (* copy *)
  in
  Hashtbl.iter (fun _ h -> fold_heap_into t h) st.heaps;
  let pending =
    Hashtbl.fold
      (fun _ h acc ->
        Array.fold_left (fun a s -> a + rq_pending s.sh_remote) acc h.h_shards)
      st.heaps 0
  in
  [ "mallocs", t.t_mallocs; "frees", t.t_frees;
    "remote_enq", t.t_remote_enq; "remote_drained", t.t_remote_drained;
    "drains", t.t_drains; "owner_sweeps", t.t_owner_sweeps;
    "reuse_sweeps", t.t_reuse_sweeps; "adoptions", t.t_adoptions;
    "tags_cleared", t.t_tags_cleared; "unmap_leaks", t.t_unmap_leaks;
    "pending_remote", pending;
    "heaps", Hashtbl.length st.heaps; "evicted", st.evicted ]
