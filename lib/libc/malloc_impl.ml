(* The userspace allocator: a lightly-JEMalloc-shaped size-class allocator
   (§4, "Dynamic allocations").

   - Arena chunks come from mmap (through the real syscall path, so they
     carry VMMAP capabilities under CheriABI).
   - Small requests are served from per-class runs; large ones map their
     own region, with the length rounded via CRRL so that bounds are
     exactly representable (the padding requirement of compressed
     capabilities, paper footnote 2).
   - Returned CheriABI capabilities are bounded to the allocation and have
     the VMMAP and EXECUTE permissions stripped: heap pointers can neither
     remap memory under the allocator nor be executed.
   - free() uses the *freed capability only to look up* the allocator's
     internal capability, then discards it. *)

module Cap = Cheri_cap.Cap
module Perms = Cheri_cap.Perms
module Compress = Cheri_cap.Compress
module Abi = Cheri_core.Abi
module Addr_space = Cheri_vm.Addr_space
module Pmap = Cheri_vm.Pmap
module Tagmem = Cheri_tagmem.Tagmem
module K = Cheri_kernel.Kstate
module Proc = Cheri_kernel.Proc
module Sys_impl = Cheri_kernel.Sys_impl
module Sysno = Cheri_kernel.Sysno
module Uarg = Cheri_kernel.Uarg
module Errno = Cheri_kernel.Errno

let size_classes =
  [| 16; 32; 48; 64; 96; 128; 192; 256; 384; 512; 768; 1024; 1536; 2048;
     3072; 4096 |]

let nclasses = Array.length size_classes

let class_of_size n =
  let rec go i =
    if i >= nclasses then None
    else if size_classes.(i) >= n then Some i
    else go (i + 1)
  in
  go 0

type chunk = {
  ck_base : int;
  ck_len : int;
  ck_cap : Cap.t option;       (* the VMMAP-bearing mmap capability *)
  mutable ck_next : int;       (* bump pointer for carving runs *)
}

type alloc_info = {
  ai_size : int;               (* requested size *)
  ai_class : int;              (* -1 = large (own mapping) *)
}

type arena = {
  a_abi : Abi.t;
  mutable a_chunks : chunk list;
  (* Interval index: page number -> owning chunk, so the per-allocation
     parent-capability lookup is O(1) instead of a chunk-list walk. *)
  a_chunk_pages : (int, chunk) Hashtbl.t;
  a_free : int list array;     (* per-class free lists of addresses *)
  a_live : (int, alloc_info) Hashtbl.t;
  mutable a_mallocs : int;
  mutable a_frees : int;
  mutable a_tags_cleared : int;  (* stale capabilities swept by free() *)
  mutable a_unmap_leaks : int;   (* large frees whose unmap failed *)
}

(* Arenas are keyed by address-space principal, so a fresh image (execve)
   automatically gets a fresh arena. *)
let arenas : (int, arena) Hashtbl.t = Hashtbl.create 16

let arena_of (p : Proc.t) =
  let key = Addr_space.principal p.Proc.asp in
  match Hashtbl.find_opt arenas key with
  | Some a -> a
  | None ->
    let a =
      { a_abi = p.Proc.abi; a_chunks = []; a_chunk_pages = Hashtbl.create 64;
        a_free = Array.make nclasses [];
        a_live = Hashtbl.create 64; a_mallocs = 0; a_frees = 0;
        a_tags_cleared = 0; a_unmap_leaks = 0 }
    in
    Hashtbl.replace arenas key a;
    a

exception Alloc_fault of Errno.t

let chunk_size = 64 * 1024

(* Invoked whenever the allocator maps fresh memory (arena chunks, large
   regions). The ASan runtime uses it to poison unallocated heap. *)
let on_map : (K.t -> Proc.t -> int -> int -> unit) option ref = ref None

let notify_map k p base len =
  match !on_map with Some f -> f k p base len | None -> ()

(* Each chunk starts with a small header, as jemalloc's do; allocations
   never sit at the very start of a mapping. *)
let chunk_header = 16

let page_shift = Cheri_tagmem.Phys.page_shift

(* Register every page of a fresh chunk in the interval index. *)
let index_chunk a ck =
  let first = ck.ck_base lsr page_shift
  and last = (ck.ck_base + ck.ck_len - 1) lsr page_shift in
  for pg = first to last do
    Hashtbl.replace a.a_chunk_pages pg ck
  done

(* Acquire a chunk through the mmap syscall path (paying its costs and,
   under CheriABI, receiving a VMMAP capability). *)
let grow k (p : Proc.t) a =
  let args =
    [ Uarg.UPtr (Uarg.Uaddr 0); Uarg.UInt chunk_size;
      Uarg.UInt (Sysno.prot_read lor Sysno.prot_write);
      Uarg.UInt Sysno.map_anon; Uarg.UInt (-1); Uarg.UInt 0 ]
  in
  match Sys_impl.sys_mmap k p args with
  | Sys_impl.RPtr (Uarg.Uaddr base) ->
    let ck = { ck_base = base; ck_len = chunk_size; ck_cap = None;
               ck_next = base + chunk_header } in
    a.a_chunks <- ck :: a.a_chunks;
    index_chunk a ck;
    notify_map k p base chunk_size;
    ck
  | Sys_impl.RPtr (Uarg.Ucap c) ->
    let ck = { ck_base = Cap.base c; ck_len = chunk_size; ck_cap = Some c;
               ck_next = Cap.base c + chunk_header } in
    a.a_chunks <- ck :: a.a_chunks;
    index_chunk a ck;
    notify_map k p (Cap.base c) chunk_size;
    ck
  | Sys_impl.RInt _ | Sys_impl.RNone -> raise (Alloc_fault Errno.ENOMEM)

(* Map a dedicated region for a large allocation, CRRL-rounded so the
   bounds are exact. *)
let map_large k p len =
  let rlen = Compress.crrl len in
  let args =
    [ Uarg.UPtr (Uarg.Uaddr 0); Uarg.UInt rlen;
      Uarg.UInt (Sysno.prot_read lor Sysno.prot_write);
      Uarg.UInt Sysno.map_anon; Uarg.UInt (-1); Uarg.UInt 0 ]
  in
  match Sys_impl.sys_mmap k p args with
  | Sys_impl.RPtr (Uarg.Uaddr base) ->
    notify_map k p base (Addr_space.page_align_up rlen);
    base, None
  | Sys_impl.RPtr (Uarg.Ucap c) ->
    notify_map k p (Cap.base c) (Addr_space.page_align_up rlen);
    Cap.base c, Some c
  | Sys_impl.RInt _ | Sys_impl.RNone -> raise (Alloc_fault Errno.ENOMEM)

(* Carve one object of class [ci] out of a chunk. *)
let carve k p a ci =
  let size = size_classes.(ci) in
  let rec find = function
    | ck :: rest ->
      if ck.ck_next + size <= ck.ck_base + ck.ck_len then begin
        let addr = ck.ck_next in
        ck.ck_next <- addr + size;
        addr, ck.ck_cap
      end
      else find rest
    | [] ->
      let ck = grow k p a in
      let addr = ck.ck_next in
      ck.ck_next <- addr + size;
      addr, ck.ck_cap
  in
  find a.a_chunks

(* O(1) via the page index: a page belongs to at most one chunk. *)
let chunk_cap_for a addr =
  match Hashtbl.find_opt a.a_chunk_pages (addr lsr page_shift) with
  | Some ck when addr >= ck.ck_base && addr < ck.ck_base + ck.ck_len ->
    ck.ck_cap
  | _ -> None

(* Heap-pointer permissions: data access only — no VMMAP, no EXECUTE. *)
let heap_perms = Perms.data

(* Allocate [len] bytes; returns (address, CheriABI capability option). *)
let malloc k (p : Proc.t) len =
  if len < 0 then raise (Alloc_fault Errno.EINVAL);
  let len = max len 1 in
  let a = arena_of p in
  a.a_mallocs <- a.a_mallocs + 1;
  let addr, parent, ci =
    match class_of_size len with
    | Some ci ->
      (match a.a_free.(ci) with
       | addr :: rest ->
         a.a_free.(ci) <- rest;
         addr, chunk_cap_for a addr, ci
       | [] ->
         let addr, cap = carve k p a ci in
         addr, cap, ci)
    | None ->
      let base, cap = map_large k p len in
      base, cap, -1
  in
  Hashtbl.replace a.a_live addr { ai_size = len; ai_class = ci };
  K.charge k p (90 + (len / 64));
  match a.a_abi with
  | Abi.Mips64 | Abi.Asan -> addr, None
  | Abi.Cheriabi ->
    let parent =
      match parent with
      | Some c -> c
      | None -> Addr_space.root_cap p.Proc.asp
    in
    (* Bounds match the request, rounded only as representability forces. *)
    let c = Cap.set_bounds (Cap.set_addr parent addr) ~len:(Compress.crrl len) in
    let c = Cap.and_perms c heap_perms in
    K.trace_grant k p ~origin:"malloc" c;
    addr, Some c

(* Look up a live allocation; [None] for addresses malloc never returned. *)
let lookup (p : Proc.t) addr =
  let a = arena_of p in
  Hashtbl.find_opt a.a_live addr

(* Sweep stale capabilities off the freed object: clear every tag covering
   [addr, addr+len). Without this a recycled allocation can read a tagged
   capability left behind by its previous owner — the heap capability-leak
   class that CHERI temporal-safety work (CHERIvoke / Cornucopia) targets.
   Only resident pages can carry tags (zero-fill and swap-in rewrite the
   others), so the sweep never faults anything in. *)
let sweep_freed_tags (p : Proc.t) addr len =
  let pmap = Addr_space.pmap p.Proc.asp in
  let mem = Pmap.mem pmap in
  let page = Addr_space.page_size in
  let cleared = ref 0 in
  let first = addr lsr page_shift and last = (addr + len - 1) lsr page_shift in
  for pg = first to last do
    let va = pg * page in
    match Pmap.resident_pa pmap va with
    | None -> ()
    | Some pa ->
      let lo = max addr va and hi = min (addr + len) (va + page) in
      cleared :=
        !cleared + Tagmem.clear_tags_covering_count mem (pa + (lo - va)) (hi - lo)
  done;
  !cleared

let free k (p : Proc.t) addr =
  let a = arena_of p in
  match Hashtbl.find_opt a.a_live addr with
  | None -> raise (Alloc_fault Errno.EINVAL)   (* invalid / double free *)
  | Some info ->
    Hashtbl.remove a.a_live addr;
    a.a_frees <- a.a_frees + 1;
    K.charge k p 60;
    let freed_span =
      if info.ai_class >= 0 then size_classes.(info.ai_class)
      else Compress.crrl info.ai_size
    in
    a.a_tags_cleared <- a.a_tags_cleared + sweep_freed_tags p addr freed_span;
    if info.ai_class >= 0 then
      a.a_free.(info.ai_class) <- addr :: a.a_free.(info.ai_class)
    else begin
      (* Large allocation: unmap its dedicated region. map_large mapped a
         page-aligned span, so unmap the same page-aligned length; a failed
         unmap is a real leak and is counted, not swallowed. *)
      let rlen = Addr_space.page_align_up (Compress.crrl info.ai_size) in
      try Addr_space.unmap p.Proc.asp ~start:addr ~len:rlen
      with Addr_space.Map_error _ -> a.a_unmap_leaks <- a.a_unmap_leaks + 1
    end;
    info

type arena_stats = {
  st_mallocs : int;
  st_frees : int;
  st_live : int;
  st_tags_cleared : int;   (* stale capabilities swept on free *)
  st_unmap_leaks : int;    (* large frees whose unmap failed *)
}

let stats (p : Proc.t) =
  let a = arena_of p in
  { st_mallocs = a.a_mallocs; st_frees = a.a_frees;
    st_live = Hashtbl.length a.a_live;
    st_tags_cleared = a.a_tags_cleared; st_unmap_leaks = a.a_unmap_leaks }
