(* Shared objects and executable images.

   A shared object is the unit of dynamic linking: code (as assembler
   items with symbolic references), an initialized-data template, bss and
   TLS sizes, an export table, the list of symbols it reaches through the
   capability table (GOT), and data relocations for pointer-valued
   initializers.

   Symbolic reference namespaces used in code (resolved by the linker):
   - ["f"]        a code label; direct jumps (same-object, or cross-object
                  for the legacy ABI only);
   - ["addr$s"]   the absolute virtual address of symbol [s] (legacy
                  globals, function pointers, string literals);
   - ["got$s"]    the byte offset of [s]'s slot within the process
                  capability table (CheriABI global/function/TLS access). *)

type sym_kind =
  | Func
  | Data of int   (* size in bytes *)
  | Tls of int    (* size in bytes, offset within the object's TLS block *)

type export = {
  exp_name : string;
  exp_kind : sym_kind;
  exp_off : int;
  (* Func: unused (the code label carries the address).
     Data: offset within this object's data segment.
     Tls: offset within this object's TLS block. *)
}

(* A pointer-valued initializer in the data segment: at [dr_off] store the
   address of (or a capability to) [dr_target] plus [dr_addend]. Under
   CheriABI these become capability relocations processed at startup,
   because tags are not preserved on disk (§4, "Dynamic linking"). *)
type data_reloc = { dr_off : int; dr_target : string; dr_addend : int }

type t = {
  so_name : string;
  so_code : Cheri_isa.Asm.item list;
  so_data : Bytes.t;
  so_bss : int;
  so_tls : int;
  so_exports : export list;
  so_got_syms : string list;
  so_data_relocs : data_reloc list;
  so_needed : string list;
  (* Data-segment ranges the ASan backend wants poisoned at startup
     (global redzones), as (offset, length) pairs. *)
  so_shadow_poison : (int * int) list;
}

let make ~name ?(data = Bytes.create 0) ?(bss = 0) ?(tls = 0) ?(exports = [])
    ?(got_syms = []) ?(data_relocs = []) ?(needed = [])
    ?(shadow_poison = []) code =
  { so_name = name; so_code = code; so_data = data; so_bss = bss;
    so_tls = tls; so_exports = exports; so_got_syms = got_syms;
    so_data_relocs = data_relocs; so_needed = needed;
    so_shadow_poison = shadow_poison }

let code_size_bytes t =
  4 * List.length
        (List.filter
           (function Cheri_isa.Asm.Lbl _ -> false | _ -> true)
           t.so_code)

let find_export t name =
  List.find_opt (fun e -> e.exp_name = name) t.so_exports

(* An executable image: the program object plus the shared objects it
   needs, and the entry symbol (conventionally "_start" in crt0).

   [img_id] is a process-unique identity stamped at construction. Images
   are immutable once built and shared freely (the same image is installed
   into many kernels by the bench and test harnesses), so the id is a
   stable cache key for per-image derived artifacts — notably the
   check-elision fact cache (lib/analysis/absint.ml), which memoizes
   analysis results per (image, analysis-parameters). *)
type image = {
  img_id : int;
  img_name : string;
  img_objects : t list;    (* program first, then libraries *)
  img_entry : string;
}

(* Atomic so image identity stays unique even if a fleet domain builds an
   image (the fleet builds everything up front in the spawning domain, but
   the id must never silently collide — it keys the analysis caches). *)
let next_image_id = Atomic.make 0

let image ~name ~entry objects =
  { img_id = Atomic.fetch_and_add next_image_id 1 + 1; img_name = name;
    img_objects = objects; img_entry = entry }

let image_id img = img.img_id
