(* The scheduler and trap/syscall dispatch loop.

   Context switching installs the next process's address-space translation
   and code map into the machine (the kernel saves and restores the full
   capability register context implicitly, since each process owns its
   [Cpu.ctx] — Fig. 2, left panel). *)

module Cap = Cheri_cap.Cap
module Cpu = Cheri_isa.Cpu
module Bbcache = Cheri_isa.Bbcache
module Reg = Cheri_isa.Reg
module Trap = Cheri_isa.Trap
module Trace = Cheri_isa.Trace
module Abi = Cheri_core.Abi
module Pmap = Cheri_vm.Pmap
module Addr_space = Cheri_vm.Addr_space

let install_machine k (p : Proc.t) =
  let pmap = Addr_space.pmap p.Proc.asp in
  (* The block cache decodes through this process's fetch callback; blocks
     from another address space are meaningless, so flush on real context
     switches (not on every quantum of a single process). *)
  if k.Kstate.bb_owner <> p.Proc.pid then begin
    Bbcache.invalidate k.Kstate.bb;
    k.Kstate.bb_owner <- p.Proc.pid
  end;
  (* Check-elision facts ride along with the block cache: they apply only
     while the code they were proved against is still mapped unchanged.
     On a pmap-generation mismatch, consult the mutation log: if every
     intervening mutation (munmap/mprotect ranges) missed the fact set's
     code regions — the common case being heap churn — the facts stay
     valid and only their generation stamp is refreshed (decoded blocks
     were still flushed by Bbcache's own map_gen check, but rebuilding
     them from retained facts is cheap; re-analysis is not). If the log
     window no longer covers the gap, or a mutation hit analyzed code,
     drop the facts conservatively. *)
  let facts =
    match p.Proc.facts with
    | Some _ when p.Proc.facts_gen = Pmap.generation pmap -> p.Proc.facts
    | Some _ ->
      let keep =
        p.Proc.fact_regions <> []
        && (match Pmap.mutations_since pmap ~gen:p.Proc.facts_gen with
            | None -> false
            | Some ranges ->
              List.for_all
                (fun (v, l) ->
                  not
                    (List.exists
                       (fun (b, top) -> v < top && v + l > b)
                       p.Proc.fact_regions))
                ranges)
      in
      if keep then begin
        p.Proc.facts_gen <- Pmap.generation pmap;
        p.Proc.facts
      end
      else begin
        p.Proc.facts <- None;
        None
      end
    | None -> None
  in
  Bbcache.set_facts k.Kstate.bb facts;
  k.Kstate.machine.Cpu.translate <-
    (fun v ~write ~exec -> Pmap.translate pmap v ~write ~exec);
  k.Kstate.machine.Cpu.fetch <- Proc.fetch p;
  k.Kstate.machine.Cpu.tracer <-
    (match k.Kstate.tracer, k.Kstate.trace_pid with
     | Some sink, Some pid when pid = p.Proc.pid -> Some sink
     | _ -> None)

(* --- System-call dispatch --------------------------------------------------------- *)

let marshal_args (p : Proc.t) spec =
  let ctx = p.Proc.ctx in
  match p.Proc.abi with
  | Abi.Mips64 | Abi.Asan ->
    List.mapi
      (fun i kind ->
        let v = ctx.Cpu.gpr.(Reg.a0 + i) in
        match kind with
        | Sysno.AInt -> Uarg.UInt v
        | Sysno.APtr -> Uarg.UPtr (Uarg.Uaddr v))
      spec
  | Abi.Cheriabi ->
    let ii = ref 0 and ci = ref 0 in
    List.map
      (function
        | Sysno.AInt ->
          let v = ctx.Cpu.gpr.(Reg.a0 + !ii) in
          incr ii;
          Uarg.UInt v
        | Sysno.APtr ->
          let c = ctx.Cpu.creg.(Reg.ca0 + !ci) in
          incr ci;
          Uarg.UPtr (Uarg.Ucap c))
      spec

let do_syscall k (p : Proc.t) =
  let ctx = p.Proc.ctx in
  let num = ctx.Cpu.gpr.(Reg.v0) in
  p.Proc.syscall_count <- p.Proc.syscall_count + 1;
  let cfg = k.Kstate.config in
  Kstate.charge k p
    (match p.Proc.abi with
     | Abi.Cheriabi -> cfg.Kstate.trap_cost_cheri
     | Abi.Mips64 | Abi.Asan -> cfg.Kstate.trap_cost_legacy);
  match Sysno.lookup num, Sys_impl.handler num with
  | Some (name, spec), Some h ->
    Kstate.bump_stat k name;
    let entry_pcc = ctx.Cpu.pcc in
    (try
       match h k p (marshal_args p spec) with
       | Sys_impl.RInt v -> ctx.Cpu.gpr.(Reg.v0) <- v
       | Sys_impl.RPtr (Uarg.Uaddr a) -> ctx.Cpu.gpr.(Reg.v0) <- a
       | Sys_impl.RPtr (Uarg.Ucap c) ->
         ctx.Cpu.creg.(Reg.ca0) <- c;
         ctx.Cpu.gpr.(Reg.v0) <- 0
       | Sys_impl.RNone -> ()
     with
     | Errno.Error e ->
       ctx.Cpu.gpr.(Reg.v0) <- -(Errno.to_code e);
       (* Pointer-returning syscalls signal errors in the result
          capability register too: an untagged value holding -errno. *)
       if p.Proc.abi = Abi.Cheriabi then
         ctx.Cpu.creg.(Reg.ca0) <- Cap.set_addr Cap.null (-(Errno.to_code e))
     | Sys_impl.Restart ->
       (* Re-execute the SYSCALL instruction after wakeup. *)
       ctx.Cpu.pcc <- Cap.set_addr entry_pcc (Cap.addr entry_pcc - 4))
  | _, _ -> ctx.Cpu.gpr.(Reg.v0) <- -(Errno.to_code Errno.ENOSYS)

(* --- Trap handling ------------------------------------------------------------------ *)

let signal_of_trap = function
  | Trap.Cap_fault _ -> Signo.sigprot
  | Trap.Page_fault _ | Trap.Address_error _ | Trap.Fetch_fault _ ->
    Signo.sigsegv
  | Trap.Unaligned _ -> Signo.sigbus
  | Trap.Reserved_instruction -> Signo.sigill
  | Trap.Break_trap _ -> Signo.sigabrt
  | Trap.Div_by_zero | Trap.Overflow -> Signo.sigfpe

let handle_trap k (p : Proc.t) cause =
  match cause with
  | Trap.Page_fault { vaddr; write; exec } ->
    let pmap = Addr_space.pmap p.Proc.asp in
    let on_rederive c = Kstate.trace_grant k p ~origin:"swap" c in
    (match Pmap.handle_fault pmap ~vaddr ~write ~exec ~on_rederive () with
     | Pmap.Handled -> Kstate.charge k p 220   (* fault service cost *)
     | Pmap.Bad_access | Pmap.Not_mapped ->
       Proc.log_fault p
         (Trap.to_string cause ^ " "
          ^ Proc.describe_pc p (Cap.addr p.Proc.ctx.Cpu.pcc));
       Proc.post_signal p Signo.sigsegv)
  | _ ->
    Proc.log_fault p
      (Trap.to_string cause ^ " "
       ^ Proc.describe_pc p (Cap.addr p.Proc.ctx.Cpu.pcc));
    (match k.Kstate.tracer, k.Kstate.trace_pid with
     | Some sink, Some pid when pid = p.Proc.pid ->
       sink (Trace.Fault { pc = Cap.addr p.Proc.ctx.Cpu.pcc;
                           cause = Trap.to_string cause })
     | _ -> ());
    Proc.post_signal p (signal_of_trap cause)

(* --- Main loop ------------------------------------------------------------------------- *)

(* Run the system until no process is runnable or [max_steps] user
   instructions have executed. Returns the number of instructions run. *)
let run ?(max_steps = max_int) k =
  let executed = ref 0 in
  let idle_scans = ref 0 in
  (* Stop once a full pass over the queue finds nothing runnable. *)
  let continue_ () =
    !executed < max_steps && k.Kstate.runq <> []
    && !idle_scans <= List.length k.Kstate.runq
  in
  while continue_ () do
    match k.Kstate.runq with
    | [] -> ()
    | pid :: rest ->
      k.Kstate.runq <- rest @ [ pid ];
      (match Kstate.find_proc k pid with
       | None -> ()
       | Some p ->
         if not (Proc.is_runnable p) then begin
           (* Count a full scan of non-runnable processes as idleness. *)
           incr idle_scans
         end
         else begin
           idle_scans := 0;
           install_machine k p;
           if Signal_dispatch.deliver_pending k p && Proc.is_runnable p then begin
             let before = p.Proc.ctx.Cpu.instret in
             let fuel =
               min k.Kstate.config.Kstate.quantum
                 (max 1 (max_steps - !executed))
             in
             let stop =
               match k.Kstate.config.Kstate.engine with
               | Cpu.Step -> Cpu.run k.Kstate.machine p.Proc.ctx ~fuel
               | (Cpu.Block | Cpu.Chain) as e ->
                 (* [fuel] is the scheduler quantum: the block cache checks
                    it per block — and, when chaining, per chained entry —
                    so preemption lands on exactly the same instruction as
                    the step engine (mid-block expiry single-steps). *)
                 Bbcache.run ~chain:(e = Cpu.Chain)
                   ~map_gen:(Pmap.generation (Addr_space.pmap p.Proc.asp))
                   k.Kstate.bb k.Kstate.machine p.Proc.ctx ~fuel
             in
             executed := !executed + (p.Proc.ctx.Cpu.instret - before);
             (match stop with
              | None -> Kstate.charge k p k.Kstate.config.Kstate.ctx_switch_cost
              | Some Cpu.Stop_syscall -> do_syscall k p
              | Some (Cpu.Stop_rt n) ->
                (match k.Kstate.rt_handler with
                 | Some h -> h k p n
                 | None ->
                   Proc.log_fault p "runtime builtin with no handler";
                   Kstate.exit_proc k p (Proc.Signaled Signo.sigill))
              | Some (Cpu.Stop_trap cause) -> handle_trap k p cause)
           end
         end)
  done;
  (* A pass that found only sleeping processes means deadlock or quiescence;
     idle_scans saturates and we return. *)
  !executed
