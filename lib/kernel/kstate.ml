(* Kernel state and the user-memory access layer (copyin/copyout).

   Boot follows the paper's §3 construction: at machine reset a maximally
   permissive capability exists; kernel startup deliberately narrows it
   into a kernel root and a userspace root. Every process address-space
   root then derives from the userspace root, so the entire system's
   capabilities form one provenance tree rooted at reset.

   All kernel access to process memory goes through [copyin]/[copyout]
   (and the capability-preserving variants): for CheriABI processes these
   *require* a valid user capability and check it before every byte moved —
   "non-capability versions of copyout and copyin return errors" (§4). *)

module Cap = Cheri_cap.Cap
module Perms = Cheri_cap.Perms
module Tagmem = Cheri_tagmem.Tagmem
module Phys = Cheri_tagmem.Phys
module Cache = Cheri_tagmem.Cache
module Cpu = Cheri_isa.Cpu
module Trace = Cheri_isa.Trace
module Abi = Cheri_core.Abi
module Prot = Cheri_vm.Prot
module Swap = Cheri_vm.Swap
module Pmap = Cheri_vm.Pmap
module Addr_space = Cheri_vm.Addr_space

type shm_seg = {
  shm_id : int;
  shm_key : int;
  shm_size : int;
  shm_frames : int array;
}

(* Synthetic cost model (cycles). The asymmetries implement the paper's
   observations: a CheriABI trap frame saves/restores the capability
   register file (larger), while the legacy syscall path must *construct*
   an internal kernel capability for every user pointer argument before the
   kernel may dereference it (intentional use), which is what makes
   pointer-heavy syscalls like select faster under CheriABI (§5.2). *)
type config = {
  mutable engine : Cpu.engine;          (* execution engine (docs/INTERP.md) *)
  mutable quantum : int;                (* instructions per timeslice *)
  mutable trap_cost_legacy : int;
  mutable trap_cost_cheri : int;
  mutable ptr_arg_cost_legacy : int;    (* per pointer argument *)
  mutable ptr_arg_cost_cheri : int;
  mutable ctx_switch_cost : int;
  mutable fork_base_cost : int;
  mutable fork_page_cost : int;
  mutable fork_cap_frame_cost : int;    (* extra for capability context *)
  (* Check-elision fact provider (--elide-checks). When set, exec_image
     runs it over the freshly linked image (with the process's initial
     DDC) and attaches the resulting fact table to the process; the block
     engine then compiles proved-safe memory accesses without their
     capability check. None (the default) disables elision entirely.
     The [image] is passed so providers can memoize analysis by image
     identity (Absint.provider keys its fact cache on Sobj.image_id plus
     the DDC, since facts are DDC-dependent): re-exec'ing a shared image
     is then a hash lookup instead of a whole-image re-analysis. *)
  mutable fact_provider :
    (image:Cheri_rtld.Sobj.image -> ddc:Cheri_cap.Cap.t ->
     entries:int list -> got:(int * int) list ->
     (int * Cheri_isa.Insn.t array) list -> Cheri_isa.Facts.t) option;
}

let default_config () =
  { (* Chaining block engine by default: bit-identical to Step/Block (the
       differential fuzzer and kernel parity tests enforce it), so every
       workload run in the suite also exercises the chained paths. *)
    engine = Cpu.Chain;
    quantum = 20_000;
    trap_cost_legacy = 130;
    trap_cost_cheri = 134;
    ptr_arg_cost_legacy = 9;
    ptr_arg_cost_cheri = 4;
    ctx_switch_cost = 350;
    fork_base_cost = 2600;
    fork_page_cost = 55;
    fork_cap_frame_cost = 260;
    fact_provider = None }

(* Extensible slot for state owned by the runtime library (the allocator):
   libc depends on the kernel, not vice versa, so the kernel can only
   offer an opaque anchor. The allocator registers its own constructor
   ([Malloc_impl.Alloc_state]) and stores per-machine state here — one
   instance per booted kernel, hence per fleet worker domain, which is
   what removes the old cross-domain global-table race. *)
type rt_ext = ..

type t = {
  mem : Tagmem.t;
  phys : Phys.t;
  swap : Swap.t;
  machine : Cpu.machine;
  (* Decoded basic-block cache for the block engine. One cache serves the
     whole machine: it is flushed on context switch (the decoded code maps
     are per-process), on exec, and on pmap generation changes. *)
  bb : Cheri_isa.Bbcache.t;
  mutable bb_owner : int;               (* pid whose blocks are cached; -1 none *)
  procs : (int, Proc.t) Hashtbl.t;
  mutable runq : int list;              (* round-robin order *)
  vfs : Vfs.t;
  mutable next_pid : int;
  kernel_root : Cap.t;
  user_root : Cap.t;
  shm : (int, shm_seg) Hashtbl.t;
  mutable next_shm_id : int;
  mutable tracer : Trace.sink option;
  mutable trace_pid : int option;
  (* Runtime-builtin dispatcher, installed by the C runtime library. *)
  mutable rt_handler : (t -> Proc.t -> int -> unit) option;
  (* Per-machine runtime-library state (allocator heaps); see [rt_ext]. *)
  mutable rt_alloc : rt_ext option;
  (* Lifecycle hooks for runtime-library state keyed by address-space
     principal. [on_asp_destroy] fires with the principal *before* the
     space is torn down (exit and execve both destroy the old space) so
     per-space allocator metadata can be evicted instead of leaking.
     [on_fork] fires after the child process is fully constructed so
     allocator metadata follows the COW'd heap into the child. *)
  mutable on_asp_destroy : (t -> int -> unit) option;
  mutable on_fork : (t -> Proc.t -> Proc.t -> unit) option;
  config : config;
  syscall_stats : (string, int) Hashtbl.t;
  mutable console_echo : bool;
}

let boot ?(mem_size = 64 * 1024 * 1024) ?l2_size () =
  let mem = Tagmem.create ~size:mem_size in
  let phys = Phys.create mem in
  let swap = Swap.create () in
  let hier = Cache.create_hierarchy ?l2_size () in
  let machine = Cpu.create_machine ~mem ~hier in
  (* Machine reset: the primordial capability. *)
  let reset_root = Cap.make_root ~base:0 ~top:(1 lsl 48) () in
  (* Kernel startup: deliberate narrowing (§3, "Kernel startup"). *)
  let user_root =
    Cap.and_perms
      (Cap.set_bounds
         (Cap.set_addr reset_root Addr_space.user_base_default)
         ~len:(Addr_space.user_top_default - Addr_space.user_base_default))
      (Perms.diff Perms.all Perms.system_regs)
  in
  let kernel_root = reset_root in
  { mem; phys; swap; machine;
    bb = Cheri_isa.Bbcache.create (); bb_owner = -1;
    procs = Hashtbl.create 16; runq = [];
    vfs = Vfs.create ();
    next_pid = 1;
    kernel_root; user_root;
    shm = Hashtbl.create 8; next_shm_id = 1;
    tracer = None; trace_pid = None;
    rt_handler = None;
    rt_alloc = None;
    on_asp_destroy = None;
    on_fork = None;
    config = default_config ();
    syscall_stats = Hashtbl.create 64;
    console_echo = false }

let hierarchy k = k.machine.Cpu.hier

let find_proc k pid = Hashtbl.find_opt k.procs pid

let proc_exn k pid =
  match find_proc k pid with
  | Some p -> p
  | None -> Errno.raise_errno Errno.ESRCH

let add_proc k p =
  Hashtbl.replace k.procs p.Proc.pid p;
  k.runq <- k.runq @ [ p.Proc.pid ]

let alloc_pid k =
  let pid = k.next_pid in
  k.next_pid <- pid + 1;
  pid

let charge k (p : Proc.t) cycles =
  ignore k;
  p.Proc.ctx.Cpu.cycles <- p.Proc.ctx.Cpu.cycles + cycles

let bump_stat k name =
  Hashtbl.replace k.syscall_stats name
    (1 + Option.value ~default:0 (Hashtbl.find_opt k.syscall_stats name))

(* Emit a kernel capability grant into the trace when [p] is the traced
   process. *)
let trace_grant k (p : Proc.t) ~origin cap =
  match k.tracer, k.trace_pid with
  | Some sink, Some pid when pid = p.Proc.pid && Cap.is_tagged cap ->
    sink (Trace.Grant { origin; result = cap })
  | _ -> ()

(* --- Wakeups ------------------------------------------------------------------- *)

let wake_sleepers k chan =
  Hashtbl.iter
    (fun _ (p : Proc.t) ->
      match p.Proc.state with
      | Proc.Sleeping c when c = chan -> p.Proc.state <- Proc.Runnable
      | _ -> ())
    k.procs

let wake_pipe_waiters k (pipe : Vfs.pipe) =
  wake_sleepers k (Proc.Wait_pipe pipe.Vfs.p_id)

(* Terminate [p]: release descriptors and memory, become a zombie, wake the
   parent, and notify pipe peers. *)
let exit_proc k (p : Proc.t) status =
  Proc.close_all_fds p;
  (match k.on_asp_destroy with
   | Some f -> f k (Addr_space.principal p.Proc.asp)
   | None -> ());
  Cheri_vm.Addr_space.destroy p.Proc.asp;
  Proc.clear_code p;
  p.Proc.state <- Proc.Zombie status;
  k.runq <- List.filter (fun pid -> pid <> p.Proc.pid) k.runq;
  (match find_proc k p.Proc.parent with
   | Some parent ->
     Proc.post_signal parent Signo.sigchld;
     (match parent.Proc.state with
      | Proc.Sleeping Proc.Wait_child -> parent.Proc.state <- Proc.Runnable
      | _ -> ())
   | None -> ());
  (* Closing pipe ends may unblock sleepers; wake all pipe waiters and let
     them re-evaluate. *)
  Hashtbl.iter
    (fun _ (q : Proc.t) ->
      match q.Proc.state with
      | Proc.Sleeping (Proc.Wait_pipe _) -> q.Proc.state <- Proc.Runnable
      | _ -> ())
    k.procs

(* Remove a reaped zombie entirely. *)
let reap k (p : Proc.t) = Hashtbl.remove k.procs p.Proc.pid

(* --- Console -------------------------------------------------------------------- *)

let console_write k (p : Proc.t) data =
  Buffer.add_bytes p.Proc.console data;
  if k.console_echo then print_string (Bytes.to_string data)

let console_of k pid =
  match find_proc k pid with
  | Some p -> Buffer.contents p.Proc.console
  | None -> ""

(* --- User memory access ----------------------------------------------------------- *)

(* Validate a user pointer for an access of [len] bytes and return its
   virtual address. This is where the two ABIs diverge:

   - CheriABI: the user-provided capability is checked (tag, seal, perms,
     bounds). The kernel then acts with exactly that authority.
   - Legacy: only a user-address-range check is possible; the kernel must
     manufacture authority from the integer (and pays for it, see config).

   Raises [Errno.Error EPROT] (CheriABI) or [EFAULT]. *)
let check_uptr k (p : Proc.t) uptr ~len ~write =
  match uptr with
  | Uarg.Ucap c ->
    charge k p k.config.ptr_arg_cost_cheri;
    let perm = if write then Perms.store else Perms.load in
    (try
       Cap.check_access_at c ~perm ~addr:(Cap.addr c) ~len;
       Cap.addr c
     with Cap.Cap_error _ -> Errno.raise_errno Errno.EPROT)
  | Uarg.Uaddr a ->
    charge k p k.config.ptr_arg_cost_legacy;
    let asp = p.Proc.asp in
    if a < Addr_space.user_base_default
       || a + len > Addr_space.user_top_default
    then Errno.raise_errno Errno.EFAULT;
    ignore asp;
    a

let touch_page (_k : t) (p : Proc.t) vaddr ~write =
  match Pmap.kernel_touch (Addr_space.pmap p.Proc.asp) vaddr ~write with
  | Some pa -> pa
  | None -> Errno.raise_errno Errno.EFAULT

(* Iterate [f pa chunk_off chunk_len] over the physical pages backing the
   user range. *)
let iter_user_range k p vaddr len ~write f =
  let page = Phys.page_size in
  let rec go off =
    if off < len then begin
      let va = vaddr + off in
      let in_page = min (len - off) (page - (va land (page - 1))) in
      let pa = touch_page k p va ~write in
      f pa off in_page;
      go (off + in_page)
    end
  in
  go 0

let copy_cost len = 12 + (len / 8)

(* Copy [len] bytes from user memory. Tags are never transferred: data
   copies strip them, which is the paper's default for syscall copies. *)
let copyin k p uptr ~len =
  if len < 0 then Errno.raise_errno Errno.EINVAL;
  let vaddr = check_uptr k p uptr ~len ~write:false in
  let out = Bytes.create len in
  iter_user_range k p vaddr len ~write:false (fun pa off n ->
      Bytes.blit (Tagmem.read_bytes k.mem pa n) 0 out off n);
  charge k p (copy_cost len);
  out

let copyout k p uptr data =
  let len = Bytes.length data in
  let vaddr = check_uptr k p uptr ~len ~write:true in
  iter_user_range k p vaddr len ~write:true (fun pa off n ->
      Tagmem.blit_bytes k.mem ~dst:pa (Bytes.sub data off n));
  charge k p (copy_cost len)

(* Copy in a NUL-terminated string (bounded by [max], and by the user
   capability's own bounds under CheriABI). *)
let copyin_str k p uptr ~max =
  let limit =
    match uptr with
    | Uarg.Ucap c ->
      if not (Cap.is_tagged c) then Errno.raise_errno Errno.EPROT;
      min max (Cap.top c - Cap.addr c)
    | Uarg.Uaddr _ -> max
  in
  if limit <= 0 then Errno.raise_errno Errno.EPROT;
  let buf = Buffer.create 32 in
  let vaddr = check_uptr k p uptr ~len:1 ~write:false in
  let rec go i =
    if i >= limit then Errno.raise_errno Errno.ENAMETOOLONG
    else begin
      let pa = touch_page k p (vaddr + i) ~write:false in
      let c = Tagmem.read_u8 k.mem pa in
      if c = 0 then ()
      else begin
        Buffer.add_char buf (Char.chr c);
        go (i + 1)
      end
    end
  in
  go 0;
  charge k p (copy_cost (Buffer.length buf));
  Buffer.contents buf

(* Read one capability-sized slot from user memory, preserving the tag —
   used only by the special interfaces that legitimately transfer
   capabilities (argv arrays, kevent-style registrations, signal frames). *)
let read_user_cap k p uptr =
  let vaddr = check_uptr k p uptr ~len:Cap.sizeof ~write:false in
  let pa = touch_page k p vaddr ~write:false in
  charge k p 4;
  Tagmem.read_cap k.mem pa

let write_user_cap k p uptr cap =
  let vaddr = check_uptr k p uptr ~len:Cap.sizeof ~write:true in
  let pa = touch_page k p vaddr ~write:true in
  charge k p 4;
  Tagmem.write_cap k.mem pa cap

(* Read a pointer *element* (of an argv-style array) at [uptr + idx*slot]:
   a tagged capability for CheriABI, an 8-byte address for legacy. *)
let read_user_ptr_slot k p uptr idx =
  match uptr with
  | Uarg.Ucap c ->
    let slot = Cap.inc_addr c (idx * Cap.sizeof) in
    let v = read_user_cap k p (Uarg.Ucap slot) in
    if Cap.is_tagged v then Some (Uarg.Ucap v)
    else if Cap.addr v = 0 then None
    else
      (* A non-NULL untagged slot: the pointer lost its provenance. *)
      Errno.raise_errno Errno.EPROT
  | Uarg.Uaddr a ->
    let vaddr = check_uptr k p (Uarg.Uaddr (a + (idx * 8))) ~len:8 ~write:false in
    let pa = touch_page k p vaddr ~write:false in
    let v = Tagmem.read_int k.mem pa ~len:8 in
    if v = 0 then None else Some (Uarg.Uaddr v)

(* Raw kernel poke into a process's address space (exec image setup). *)
let kwrite_bytes k p vaddr data =
  iter_user_range k p vaddr (Bytes.length data) ~write:true (fun pa off n ->
      Tagmem.blit_bytes k.mem ~dst:pa (Bytes.sub data off n))

let kwrite_int k p vaddr ~len v =
  let pa = touch_page k p vaddr ~write:true in
  Tagmem.write_int k.mem pa ~len v

let kwrite_cap k p vaddr cap =
  let pa = touch_page k p vaddr ~write:true in
  Tagmem.write_cap k.mem pa cap

let kread_int k p vaddr ~len =
  let pa = touch_page k p vaddr ~write:false in
  Tagmem.read_int k.mem pa ~len

let kread_cap k p vaddr =
  let pa = touch_page k p vaddr ~write:false in
  Tagmem.read_cap k.mem pa
