(* execve: process image construction (Fig. 1).

   The kernel maps each shared object's text and data, the capability
   table, the TLS region, the stack and the signal trampoline page; the
   run-time linker initializes data and the capability table; and the
   initial register file receives exactly the capabilities the new process
   is entitled to:

   - CheriABI: PCC bounded to the entry object's text, $csp bounded to the
     stack, $c3 a capability to the argument header, $cgp the capability
     table — and DDC is NULL, so no legacy load or store can ever succeed.
   - Legacy: DDC and PCC cover the whole user address space, as on a
     conventional MIPS. *)

module Cap = Cheri_cap.Cap
module Perms = Cheri_cap.Perms
module Cpu = Cheri_isa.Cpu
module Insn = Cheri_isa.Insn
module Reg = Cheri_isa.Reg
module Abi = Cheri_core.Abi
module Prot = Cheri_vm.Prot
module Addr_space = Cheri_vm.Addr_space
module Rtld = Cheri_rtld.Rtld
module Sobj = Cheri_rtld.Sobj

let stack_top = 0x7f10_0000
let stack_size = 0x10_0000
let stack_base = stack_top - stack_size
let sigcode_base = 0x7fe0_0000

let page = 4096
let align_up v a = (v + a - 1) land lnot (a - 1)
let align_down v a = v land lnot (a - 1)

(* The signal-return trampoline: a read-only shared page mapped by execve;
   under CheriABI the return capability handed to handlers is tightly
   bounded to this page (§4, "Signal handling"). *)
let sigcode_insns = function
  | Abi.Mips64 | Abi.Asan ->
    [| Insn.Move (Reg.a0, Reg.sp);
       Insn.Li (Reg.v0, Sysno.sys_sigreturn);
       Insn.Syscall;
       Insn.Break 99 |]
  | Abi.Cheriabi ->
    [| Insn.CMove (Reg.ca0, Reg.csp);
       Insn.Li (Reg.v0, Sysno.sys_sigreturn);
       Insn.Syscall;
       Insn.Break 99 |]

(* ASan shadow memory: shadow(addr) = shadow_base + (addr >> 3). Covers
   user addresses below 0x8000_0000 (all our mappings). *)
let shadow_base = 0x10_0000_0000
let shadow_of addr = shadow_base + (addr lsr 3)
let shadow_size = 0x8000_0000 lsr 3

let data_cap ~root ~addr ~len =
  Cap.and_perms (Cap.set_bounds (Cap.set_addr root addr) ~len) Perms.data

(* Build argument strings, argv/envv arrays, and (CheriABI) the argument
   header, at the top of the stack. Returns the register setup. *)
let build_args k (p : Proc.t) ~abi ~argv ~envv =
  let root = Addr_space.root_cap p.Proc.asp in
  let cursor = ref stack_top in
  let push_str s =
    let len = String.length s + 1 in
    cursor := !cursor - len;
    Kstate.kwrite_bytes k p !cursor (Bytes.of_string (s ^ "\000"));
    !cursor, String.length s
  in
  (* Strings for argv then envv. *)
  let argv_strs = List.map push_str argv in
  let envv_strs = List.map push_str envv in
  cursor := align_down !cursor 16;
  match abi with
  | Abi.Cheriabi ->
    let write_cap_array entries =
      let n = List.length entries in
      cursor := !cursor - ((n + 1) * Cap.sizeof);
      let base = !cursor in
      List.iteri
        (fun i (addr, slen) ->
          let c = data_cap ~root ~addr ~len:(slen + 1) in
          Kstate.trace_grant k p ~origin:"exec" c;
          Kstate.kwrite_cap k p (base + (i * Cap.sizeof)) c)
        entries;
      Kstate.kwrite_cap k p (base + (n * Cap.sizeof)) Cap.null;
      base, (n + 1) * Cap.sizeof
    in
    let env_base, env_len = write_cap_array envv_strs in
    let arg_base, arg_len = write_cap_array argv_strs in
    (* Argument header: argc, argv cap, envv cap (the "ELF aux args"). *)
    cursor := !cursor - 48;
    let hdr = !cursor in
    Kstate.kwrite_int k p hdr ~len:8 (List.length argv);
    let argv_cap = data_cap ~root ~addr:arg_base ~len:arg_len in
    let envv_cap = data_cap ~root ~addr:env_base ~len:env_len in
    Kstate.trace_grant k p ~origin:"exec" argv_cap;
    Kstate.trace_grant k p ~origin:"exec" envv_cap;
    Kstate.kwrite_cap k p (hdr + 16) argv_cap;
    Kstate.kwrite_cap k p (hdr + 32) envv_cap;
    p.Proc.ps_strings <- hdr;
    `Cheri hdr
  | Abi.Mips64 | Abi.Asan ->
    let write_addr_array entries =
      let n = List.length entries in
      cursor := !cursor - ((n + 1) * 8);
      let base = !cursor in
      List.iteri
        (fun i (addr, _) -> Kstate.kwrite_int k p (base + (i * 8)) ~len:8 addr)
        entries;
      Kstate.kwrite_int k p (base + (n * 8)) ~len:8 0;
      base
    in
    let env_base = write_addr_array envv_strs in
    let arg_base = write_addr_array argv_strs in
    p.Proc.ps_strings <- arg_base;
    `Legacy (List.length argv, arg_base, env_base, align_down (!cursor - 32) 16)

(* Replace [p]'s image with [image] built for [abi]. *)
let exec_image k (p : Proc.t) ~abi ~(image : Sobj.image) ~argv ~envv =
  (* Exec destroys the old address space: give the runtime library a
     chance to evict per-space allocator state keyed by its principal. *)
  (match k.Kstate.on_asp_destroy with
   | Some f -> f k (Addr_space.principal p.Proc.asp)
   | None -> ());
  Addr_space.destroy p.Proc.asp;
  let asp = Addr_space.create ~root:k.Kstate.user_root ~phys:k.Kstate.phys
      ~swap:k.Kstate.swap () in
  p.Proc.asp <- asp;
  p.Proc.abi <- abi;
  p.Proc.ctx <- Cpu.create_ctx ();
  p.Proc.comm <- image.Sobj.img_name;
  Proc.clear_code p;
  (* Exec keeps the pid, so the context-switch flush in [Loop] would not
     fire: the old image's decoded blocks must die here. *)
  Cheri_isa.Bbcache.invalidate k.Kstate.bb;
  let link = Rtld.link ~abi image in
  p.Proc.linked <- Some link;
  (* Map text and data for every object. *)
  List.iter
    (fun (pl : Rtld.placed) ->
      let tlen = align_up (max pl.Rtld.pl_text_size 4) page in
      ignore
        (Addr_space.map_fixed asp ~start:pl.Rtld.pl_text_base ~len:tlen
           ~prot:Prot.rx ~name:("text:" ^ pl.Rtld.pl_obj.Sobj.so_name) ());
      if pl.Rtld.pl_data_size > 0 then
        ignore
          (Addr_space.map_fixed asp ~start:pl.Rtld.pl_data_base
             ~len:(align_up pl.Rtld.pl_data_size page) ~prot:Prot.rw
             ~name:("data:" ^ pl.Rtld.pl_obj.Sobj.so_name) ()))
    link.Rtld.lk_placed;
  (* Capability table (CheriABI only). *)
  (match abi with
   | Abi.Cheriabi ->
     ignore
       (Addr_space.map_fixed asp ~start:link.Rtld.lk_got_base
          ~len:link.Rtld.lk_got_size ~prot:Prot.rw ~name:"got" ())
   | Abi.Mips64 | Abi.Asan -> ());
  (* TLS block. *)
  ignore
    (Addr_space.map_fixed asp ~start:link.Rtld.lk_tls_base
       ~len:link.Rtld.lk_tls_size ~prot:Prot.rw ~name:"tls" ());
  (* Stack. *)
  ignore
    (Addr_space.map_fixed asp ~start:stack_base ~len:stack_size ~prot:Prot.rw
       ~name:"stack" ());
  (* Signal trampoline. *)
  ignore
    (Addr_space.map_fixed asp ~start:sigcode_base ~len:page ~prot:Prot.rx
       ~name:"sigcode" ());
  Proc.install_code p ~base:sigcode_base (sigcode_insns abi);
  (* ASan shadow region. *)
  (match abi with
   | Abi.Asan ->
     ignore
       (Addr_space.map_fixed asp ~start:shadow_base ~len:shadow_size
          ~prot:Prot.rw ~name:"shadow" ())
   | Abi.Mips64 | Abi.Cheriabi -> ());
  (* Install decoded code. *)
  List.iter (fun (base, insns) -> Proc.install_code p ~base insns)
    link.Rtld.lk_code;
  (* Run-time linker: data templates, relocations, capability table. *)
  let root = Addr_space.root_cap asp in
  let tracer =
    match k.Kstate.tracer, k.Kstate.trace_pid with
    | Some sink, Some pid when pid = p.Proc.pid -> Some sink
    | _ -> None
  in
  let writers =
    { Rtld.w_bytes = (fun a b -> Kstate.kwrite_bytes k p a b);
      w_int = (fun a ~len v -> Kstate.kwrite_int k p a ~len v);
      w_cap = (fun a c -> Kstate.kwrite_cap k p a c) }
  in
  Rtld.initialize link ~root ~writers ?tracer ();
  (* ASan: poison the compiler-declared global redzones. *)
  (match abi with
   | Abi.Asan ->
     List.iter
       (fun (pl : Rtld.placed) ->
         List.iter
           (fun (off, len) ->
             let addr = pl.Rtld.pl_data_base + off in
             let s0 = shadow_of addr and s1 = shadow_of (addr + len - 1) in
             for s = s0 to s1 do
               Kstate.kwrite_int k p s ~len:1 1
             done)
           pl.Rtld.pl_obj.Sobj.so_shadow_poison)
       link.Rtld.lk_placed
   | Abi.Mips64 | Abi.Cheriabi -> ());
  (* Arguments and initial registers. *)
  let ctx = p.Proc.ctx in
  (match build_args k p ~abi ~argv ~envv with
   | `Cheri hdr ->
     let stack_cap =
       Cap.and_perms
         (Cap.set_bounds (Cap.set_addr root stack_base) ~len:stack_size)
         Perms.data
     in
     let entry_pl =
       List.find
         (fun (pl : Rtld.placed) ->
           link.Rtld.lk_entry >= pl.Rtld.pl_text_base
           && link.Rtld.lk_entry < pl.Rtld.pl_text_base + pl.Rtld.pl_text_size)
         link.Rtld.lk_placed
     in
     let pcc = Cap.set_addr (Rtld.object_text_cap ~root entry_pl)
         link.Rtld.lk_entry in
     let args_cap = data_cap ~root ~addr:hdr ~len:48 in
     let cgp = Rtld.cgp_cap link ~root in
     List.iter (Kstate.trace_grant k p ~origin:"exec")
       [ stack_cap; pcc; args_cap; cgp ];
     ctx.Cpu.pcc <- pcc;
     ctx.Cpu.ddc <- Cap.null;   (* the heart of CheriABI *)
     ctx.Cpu.creg.(Reg.csp) <- Cap.set_addr stack_cap (align_down hdr 16);
     ctx.Cpu.creg.(Reg.ca0) <- args_cap;
     ctx.Cpu.creg.(Reg.cgp) <- cgp
   | `Legacy (argc, argv_base, envv_base, sp) ->
     ctx.Cpu.pcc <- Cap.set_addr root link.Rtld.lk_entry;
     ctx.Cpu.ddc <- root;
     ctx.Cpu.gpr.(Reg.sp) <- sp;
     ctx.Cpu.gpr.(Reg.a0) <- argc;
     ctx.Cpu.gpr.(Reg.a1) <- argv_base;
     ctx.Cpu.gpr.(Reg.a2) <- envv_base;
     (match abi with
      | Abi.Asan -> ctx.Cpu.gpr.(Reg.s5) <- shadow_base
      | Abi.Mips64 | Abi.Cheriabi -> ()));
  (* Static check-elision facts over the fresh image, computed under the
     process's actual initial DDC (the provider may answer from its
     image-keyed cache). Stamped with the pmap generation and the code
     ranges they were proved against, so Loop can invalidate them exactly
     when a later address-space mutation actually touches analyzed code. *)
  (match k.Kstate.config.Kstate.fact_provider with
   | Some f ->
     let code = List.map (fun (base, _, insns) -> (base, insns)) p.Proc.code in
     (* Linkage view for the provider's interprocedural layer: function
        entry points (exec entry + every exported function) and the GOT
        map (byte offset -> resolved function address). Sorted so the
        provider's caches can key on them structurally. *)
     let entries =
       link.Rtld.lk_entry
       :: Hashtbl.fold
            (fun _ d acc ->
              match d with Rtld.Dfunc (_, a) -> a :: acc | _ -> acc)
            link.Rtld.lk_symtab []
       |> List.sort_uniq compare
     in
     let got =
       List.filter_map
         (fun (name, off) ->
           match Hashtbl.find_opt link.Rtld.lk_symtab name with
           | Some (Rtld.Dfunc (_, a)) -> Some (off, a)
           | _ -> None)
         link.Rtld.lk_got
       |> List.sort compare
     in
     p.Proc.facts <- Some (f ~image ~ddc:ctx.Cpu.ddc ~entries ~got code);
     p.Proc.facts_gen <-
       Cheri_vm.Pmap.generation (Addr_space.pmap p.Proc.asp);
     p.Proc.fact_regions <-
       List.map (fun (base, top, _) -> (base, top)) p.Proc.code
   | None ->
     p.Proc.facts <- None;
     p.Proc.fact_regions <- []);
  Kstate.charge k p 4000  (* image setup cost *)

(* Create a process running the executable at [path]. *)
let spawn k ~path ~argv ?(envv = []) () =
  match Vfs.lookup k.Kstate.vfs path with
  | Some (Vfs.Exe (abi, image)) ->
    let pid = Kstate.alloc_pid k in
    let asp = Addr_space.create ~root:k.Kstate.user_root ~phys:k.Kstate.phys
        ~swap:k.Kstate.swap () in
    let p = Proc.create ~pid ~parent:0 ~abi ~asp in
    (* Standard descriptors: 0 = empty input, 1/2 = per-process console. *)
    let console_dev =
      { Vfs.d_name = "console";
        d_read = (fun _ -> Some (Bytes.create 0));
        d_write = (fun b -> Kstate.console_write k p b; Bytes.length b);
        d_ioctl = (fun cmd arg ->
            if cmd = Sysno.tiocgwinsz then begin
              let out = Bytes.create 8 in
              Bytes.set out 0 (Char.chr 80);
              Bytes.set out 1 (Char.chr 24);
              Ok out
            end else (ignore arg; Error Errno.ENOTTY)) }
    in
    p.Proc.fds.(0) <- Some (Vfs.open_entry (Vfs.ODev console_dev) ~flags:0);
    p.Proc.fds.(1) <- Some (Vfs.open_entry (Vfs.ODev console_dev) ~flags:1);
    p.Proc.fds.(2) <- Some (Vfs.open_entry (Vfs.ODev console_dev) ~flags:1);
    Kstate.add_proc k p;
    exec_image k p ~abi ~image ~argv ~envv;
    p
  | Some _ -> Errno.raise_errno Errno.EACCES
  | None -> Errno.raise_errno Errno.ENOENT
