(* System-call implementations.

   Every handler receives its arguments pre-marshalled per the calling
   convention ([Uarg.t]), and accesses process memory exclusively through
   the [Kstate] copy layer — which, for CheriABI processes, dereferences
   the user's own capability (Fig. 3). *)

module Cap = Cheri_cap.Cap
module Perms = Cheri_cap.Perms
module Cpu = Cheri_isa.Cpu
module Reg = Cheri_isa.Reg
module Abi = Cheri_core.Abi
module Prot = Cheri_vm.Prot
module Pmap = Cheri_vm.Pmap
module Addr_space = Cheri_vm.Addr_space
module Swap = Cheri_vm.Swap
module Phys = Cheri_tagmem.Phys

type ret = Sys_impl_ret.t =
  | RInt of int
  | RPtr of Uarg.uptr
  | RNone                       (* registers already set (execve, sigreturn) *)

exception Restart = Sys_impl_ret.Restart

let err = Errno.raise_errno

let int1 = function [ a ] -> Uarg.int_exn a | _ -> err Errno.EINVAL

(* --- exit / getpid / gettime ---------------------------------------------------- *)

let sys_exit k p args =
  let code = match args with a :: _ -> Uarg.int_exn a | [] -> 0 in
  Kstate.exit_proc k p (Proc.Exited (code land 0xff));
  RNone

let sys_getpid _k (p : Proc.t) _args = RInt p.Proc.pid

let sys_gettime _k (p : Proc.t) _args = RInt p.Proc.ctx.Cpu.cycles

(* --- Descriptor I/O --------------------------------------------------------------- *)

let rd_obj k p (e : Vfs.fd_entry) buf len =
  match e.Vfs.fo_obj with
  | Vfs.OFile f ->
    let data = Vfs.file_read f ~off:e.Vfs.fo_off ~len in
    Kstate.copyout k p buf data;
    e.Vfs.fo_off <- e.Vfs.fo_off + Bytes.length data;
    RInt (Bytes.length data)
  | Vfs.ODev d ->
    (match d.Vfs.d_read len with
     | Some data ->
       Kstate.copyout k p buf data;
       RInt (Bytes.length data)
     | None -> RInt 0)
  | Vfs.OPipe_r pipe | Vfs.OSock (pipe, _) ->
    (match Vfs.pipe_read pipe ~len with
     | None ->
       p.Proc.state <- Proc.Sleeping (Proc.Wait_pipe pipe.Vfs.p_id);
       raise Restart
     | Some data ->
       Kstate.copyout k p buf data;
       Kstate.wake_pipe_waiters k pipe;   (* writers waiting for space *)
       RInt (Bytes.length data))
  | Vfs.OPipe_w _ -> err Errno.EBADF

let sys_read k p = function
  | [ fd; buf; len ] ->
    let fd = Uarg.int_exn fd and len = Uarg.int_exn len in
    if len < 0 then err Errno.EINVAL;
    rd_obj k p (Proc.get_fd p fd) (Uarg.ptr_exn buf) len
  | _ -> err Errno.EINVAL

let sys_write k p = function
  | [ fd; buf; len ] ->
    let fd = Uarg.int_exn fd and len = Uarg.int_exn len in
    if len < 0 then err Errno.EINVAL;
    let e = Proc.get_fd p fd in
    let data = Kstate.copyin k p (Uarg.ptr_exn buf) ~len in
    (match e.Vfs.fo_obj with
     | Vfs.OFile f ->
       let n = Vfs.file_write f ~off:e.Vfs.fo_off data in
       e.Vfs.fo_off <- e.Vfs.fo_off + n;
       RInt n
     | Vfs.ODev d -> RInt (d.Vfs.d_write data)
     | Vfs.OPipe_w pipe | Vfs.OSock (_, pipe) ->
       let n = Vfs.pipe_write pipe data in
       Kstate.wake_pipe_waiters k pipe;
       RInt n
     | Vfs.OPipe_r _ -> err Errno.EBADF)
  | _ -> err Errno.EINVAL

let sys_open k (p : Proc.t) = function
  | [ path; flags; _mode ] ->
    let path = Kstate.copyin_str k p (Uarg.ptr_exn path) ~max:1024 in
    let flags = Uarg.int_exn flags in
    let node =
      match Vfs.lookup k.Kstate.vfs path with
      | Some n -> Some n
      | None ->
        if flags land Sysno.o_creat <> 0 then
          Some (Vfs.File (Vfs.add_file k.Kstate.vfs path))
        else None
    in
    (match node with
     | Some (Vfs.File f) ->
       if flags land Sysno.o_trunc <> 0 then Vfs.file_truncate f 0;
       let e = Vfs.open_entry (Vfs.OFile f) ~flags in
       if flags land Sysno.o_append <> 0 then e.Vfs.fo_off <- f.Vfs.f_len;
       RInt (Proc.alloc_fd p e)
     | Some (Vfs.Dev d) -> RInt (Proc.alloc_fd p (Vfs.open_entry (Vfs.ODev d) ~flags))
     | Some (Vfs.Exe _) -> err Errno.EACCES
     | Some (Vfs.Dir _) -> err Errno.EISDIR
     | None -> err Errno.ENOENT)
  | _ -> err Errno.EINVAL

let sys_close _k p args =
  Proc.close_fd p (int1 args);
  RInt 0

let sys_lseek _k p = function
  | [ fd; off; whence ] ->
    let e = Proc.get_fd p (Uarg.int_exn fd) in
    let off = Uarg.int_exn off and whence = Uarg.int_exn whence in
    (match e.Vfs.fo_obj with
     | Vfs.OFile f ->
       let base =
         match whence with
         | 0 -> 0
         | 1 -> e.Vfs.fo_off
         | 2 -> f.Vfs.f_len
         | _ -> err Errno.EINVAL
       in
       let pos = base + off in
       if pos < 0 then err Errno.EINVAL;
       e.Vfs.fo_off <- pos;
       RInt pos
     | _ -> err Errno.EINVAL)
  | _ -> err Errno.EINVAL

let sys_ftruncate _k p = function
  | [ fd; len ] ->
    (match (Proc.get_fd p (Uarg.int_exn fd)).Vfs.fo_obj with
     | Vfs.OFile f ->
       Vfs.file_truncate f (Uarg.int_exn len);
       RInt 0
     | _ -> err Errno.EINVAL)
  | _ -> err Errno.EINVAL

let sys_unlink k p = function
  | [ path ] ->
    let path = Kstate.copyin_str k p (Uarg.ptr_exn path) ~max:1024 in
    Vfs.unlink k.Kstate.vfs path;
    RInt 0
  | _ -> err Errno.EINVAL

let sys_pipe k p = function
  | [ fdp ] ->
    let pipe = Vfs.new_pipe k.Kstate.vfs in
    let rfd = Proc.alloc_fd p (Vfs.open_entry (Vfs.OPipe_r pipe) ~flags:0) in
    let wfd = Proc.alloc_fd p (Vfs.open_entry (Vfs.OPipe_w pipe) ~flags:1) in
    let out = Bytes.create 16 in
    Bytes.set_int64_le out 0 (Int64.of_int rfd);
    Bytes.set_int64_le out 8 (Int64.of_int wfd);
    Kstate.copyout k p (Uarg.ptr_exn fdp) out;
    RInt 0
  | _ -> err Errno.EINVAL

let sys_socketpair k p = function
  | [ fdp ] ->
    let a = Vfs.new_pipe k.Kstate.vfs and b = Vfs.new_pipe k.Kstate.vfs in
    let fd0 = Proc.alloc_fd p (Vfs.open_entry (Vfs.OSock (a, b)) ~flags:2) in
    let fd1 = Proc.alloc_fd p (Vfs.open_entry (Vfs.OSock (b, a)) ~flags:2) in
    let out = Bytes.create 16 in
    Bytes.set_int64_le out 0 (Int64.of_int fd0);
    Bytes.set_int64_le out 8 (Int64.of_int fd1);
    Kstate.copyout k p (Uarg.ptr_exn fdp) out;
    RInt 0
  | _ -> err Errno.EINVAL

let sys_getcwd k (p : Proc.t) = function
  | [ buf; len ] ->
    let len = Uarg.int_exn len in
    let s = p.Proc.cwd in
    if len < String.length s + 1 then err Errno.EINVAL;
    (* The kernel fills the whole caller-specified buffer. A caller that
       passes a length larger than its allocation (the BOdiagsuite getcwd
       case) is caught here under CheriABI: copyout faults on the user
       capability's bounds. *)
    let out = Bytes.make len '\000' in
    Bytes.blit_string s 0 out 0 (String.length s);
    Kstate.copyout k p (Uarg.ptr_exn buf) out;
    RInt (String.length s)
  | _ -> err Errno.EINVAL

(* --- select ------------------------------------------------------------------------ *)

let fd_ready (p : Proc.t) fd ~write =
  if fd < 0 || fd >= Proc.max_fds then false
  else
    match p.Proc.fds.(fd) with
    | None -> false
    | Some e ->
      (match e.Vfs.fo_obj with
       | Vfs.OFile _ | Vfs.ODev _ -> true
       | Vfs.OPipe_r pipe -> (not write) && Vfs.pipe_readable pipe
       | Vfs.OPipe_w pipe -> write && Vfs.pipe_writable pipe
       | Vfs.OSock (r, w) ->
         if write then Vfs.pipe_writable w else Vfs.pipe_readable r)

let sys_select k p = function
  | [ n; rp; wp; ep; tv ] ->
    let n = Uarg.int_exn n in
    if n < 0 || n > 256 then err Errno.EINVAL;
    let nbytes = (n + 7) / 8 in
    let ready = ref 0 in
    let scan uptr ~write =
      let uptr = Uarg.ptr_exn uptr in
      if Uarg.is_null uptr then ()
      else begin
        let set = Kstate.copyin k p uptr ~len:nbytes in
        let out = Bytes.make nbytes '\000' in
        for fd = 0 to n - 1 do
          let byte = fd / 8 and bit = fd mod 8 in
          if Char.code (Bytes.get set byte) land (1 lsl bit) <> 0
             && fd_ready p fd ~write
          then begin
            Bytes.set out byte
              (Char.chr (Char.code (Bytes.get out byte) lor (1 lsl bit)));
            incr ready
          end
        done;
        Kstate.copyout k p uptr out
      end
    in
    scan rp ~write:false;
    scan wp ~write:true;
    (* exceptfds: we report none, but still perform the user copies. *)
    (let epp = Uarg.ptr_exn ep in
     if not (Uarg.is_null epp) then begin
       let _ = Kstate.copyin k p epp ~len:nbytes in
       Kstate.copyout k p epp (Bytes.make nbytes '\000')
     end);
    (let tvp = Uarg.ptr_exn tv in
     if not (Uarg.is_null tvp) then
       ignore (Kstate.copyin k p tvp ~len:16));
    RInt !ready
  | _ -> err Errno.EINVAL

(* --- Memory management -------------------------------------------------------------- *)

let mmap_hint_default = 0x2000_0000

let sys_mmap k (p : Proc.t) = function
  | [ addr; len; prot; flags; _fd; _off ] ->
    let len = Uarg.int_exn len
    and protb = Uarg.int_exn prot
    and flags = Uarg.int_exn flags in
    if len <= 0 then err Errno.EINVAL;
    if flags land Sysno.map_anon = 0 then err Errno.ENOSYS;
    let prot = Sysno.prot_of_bits protb in
    let addr = Uarg.ptr_exn addr in
    let asp = p.Proc.asp in
    let fixed = flags land Sysno.map_fixed <> 0 in
    let shared = flags land Sysno.map_shared <> 0 in
    (* CheriABI hint discipline (§4, "Virtual-address management APIs"). *)
    let hint_cap =
      match addr with
      | Uarg.Ucap c when Cap.is_tagged c -> Some c
      | Uarg.Ucap _ | Uarg.Uaddr _ -> None
    in
    let hint_addr = Uarg.addr_of_uptr addr in
    let start =
      try
        if fixed then begin
          if hint_addr land (Phys.page_size - 1) <> 0 then err Errno.EINVAL;
          let may_replace =
            match hint_cap with
            | Some c -> Perms.has (Cap.perms c) Perms.vmmap
            | None -> false
          in
          (match p.Proc.abi, hint_cap with
           | Abi.Cheriabi, None ->
             (* Fixed mapping from an untagged value: only into a hole. *)
             if Addr_space.overlaps asp hint_addr len then err Errno.EPROT
           | Abi.Cheriabi, Some c ->
             if (not may_replace) && Addr_space.overlaps asp hint_addr len
             then err Errno.EPROT;
             (* The capability must actually cover the requested range. *)
             if Cap.base c > hint_addr || Cap.top c < hint_addr + len then
               err Errno.EPROT
           | (Abi.Mips64 | Abi.Asan), _ -> ());
          (Addr_space.map_fixed asp ~start:hint_addr ~len ~prot ~shared
             ~replace:may_replace ~name:"mmap" ()).Addr_space.r_start
        end
        else
          let hint = if hint_addr = 0 then mmap_hint_default else hint_addr in
          (Addr_space.map_anywhere asp ~hint ~len ~prot ~shared ~name:"mmap" ())
            .Addr_space.r_start
      with Addr_space.Map_error _ -> err Errno.ENOMEM
    in
    Kstate.charge k p (600 + (len / Phys.page_size * 10));
    (match p.Proc.abi with
     | Abi.Mips64 | Abi.Asan -> RPtr (Uarg.Uaddr start)
     | Abi.Cheriabi ->
       let rlen = Addr_space.page_align_up len in
       (* Derive from the hint capability when one was supplied (preserving
          provenance), otherwise from the address-space root. *)
       let parent =
         match hint_cap with
         | Some c when Cap.base c <= start && Cap.top c >= start + rlen -> c
         | _ -> Addr_space.root_cap asp
       in
       let c = Cap.set_bounds (Cap.set_addr parent start) ~len:rlen in
       let c =
         Cap.and_perms c (Perms.union (Prot.to_cap_perms prot) Perms.vmmap)
       in
       Kstate.trace_grant k p ~origin:"syscall" c;
       RPtr (Uarg.Ucap c))
  | _ -> err Errno.EINVAL

(* munmap and shmdt require the VMMAP permission: without it a capability
   cannot be used to unmap (and then re-map) the memory it points to. *)
let require_vmmap (p : Proc.t) uptr ~len =
  match p.Proc.abi, uptr with
  | Abi.Cheriabi, Uarg.Ucap c ->
    if not (Cap.is_tagged c) then err Errno.EPROT;
    if not (Perms.has (Cap.perms c) Perms.vmmap) then err Errno.EPROT;
    if Cap.base c > Cap.addr c || Cap.top c < Cap.addr c + len then
      err Errno.EPROT;
    Cap.addr c
  | Abi.Cheriabi, Uarg.Uaddr _ -> err Errno.EPROT
  | (Abi.Mips64 | Abi.Asan), u -> Uarg.addr_of_uptr u

let sys_munmap k (p : Proc.t) = function
  | [ addr; len ] ->
    let len = Uarg.int_exn len in
    let start = require_vmmap p (Uarg.ptr_exn addr) ~len in
    (try Addr_space.unmap p.Proc.asp ~start ~len
     with Addr_space.Map_error _ -> err Errno.EINVAL);
    Kstate.charge k p 400;
    RInt 0
  | _ -> err Errno.EINVAL

let sys_mprotect k (p : Proc.t) = function
  | [ addr; len; prot ] ->
    let len = Uarg.int_exn len and protb = Uarg.int_exn prot in
    let uptr = Uarg.ptr_exn addr in
    let start =
      match p.Proc.abi, uptr with
      | Abi.Cheriabi, Uarg.Ucap c when Cap.is_tagged c -> Cap.addr c
      | Abi.Cheriabi, _ -> err Errno.EPROT
      | (Abi.Mips64 | Abi.Asan), u -> Uarg.addr_of_uptr u
    in
    (try Addr_space.protect p.Proc.asp ~start ~len
           ~prot:(Sysno.prot_of_bits protb)
     with Addr_space.Map_error _ -> err Errno.EINVAL);
    Kstate.charge k p 300;
    RInt 0
  | _ -> err Errno.EINVAL

(* sbrk is excluded under CheriABI as a matter of principle (§4). *)
let brk_base = 0x1800_0000

let sys_sbrk k (p : Proc.t) = function
  | [ incr ] ->
    (match p.Proc.abi with
     | Abi.Cheriabi -> err Errno.ENOSYS
     | Abi.Mips64 | Abi.Asan ->
       let incr = Uarg.int_exn incr in
       let asp = p.Proc.asp in
       let cur =
         match Addr_space.region_by_name asp "heap-brk" with
         | Some r -> r.Addr_space.r_start + r.Addr_space.r_len
         | None -> brk_base
       in
       if incr > 0 then begin
         let len = Addr_space.page_align_up incr in
         (try
            ignore
              (Addr_space.map_fixed asp ~start:cur ~len ~prot:Prot.rw
                 ~name:"heap-brk" ~replace:false ())
          with Addr_space.Map_error _ -> err Errno.ENOMEM);
         Kstate.charge k p 300;
         RPtr (Uarg.Uaddr cur)
       end
       else RPtr (Uarg.Uaddr cur))
  | _ -> err Errno.EINVAL

(* --- System V shared memory ----------------------------------------------------------- *)

let sys_shmget k (_p : Proc.t) = function
  | [ key; size; _flag ] ->
    let key = Uarg.int_exn key and size = Uarg.int_exn size in
    if size <= 0 then err Errno.EINVAL;
    let existing =
      Hashtbl.fold
        (fun _ (seg : Kstate.shm_seg) acc ->
          if seg.Kstate.shm_key = key && key <> 0 then Some seg else acc)
        k.Kstate.shm None
    in
    (match existing with
     | Some seg -> RInt seg.Kstate.shm_id
     | None ->
       let pages = (size + Phys.page_size - 1) / Phys.page_size in
       let frames =
         Array.init pages (fun _ -> Phys.alloc_frame k.Kstate.phys)
       in
       let id = k.Kstate.next_shm_id in
       k.Kstate.next_shm_id <- id + 1;
       Hashtbl.replace k.Kstate.shm id
         { Kstate.shm_id = id; shm_key = key; shm_size = size;
           shm_frames = frames };
       RInt id)
  | _ -> err Errno.EINVAL

let sys_shmat k (p : Proc.t) = function
  | [ id; addr; _flag ] ->
    let id = Uarg.int_exn id in
    let seg =
      match Hashtbl.find_opt k.Kstate.shm id with
      | Some s -> s
      | None -> err Errno.EINVAL
    in
    let len = Array.length seg.Kstate.shm_frames * Phys.page_size in
    let asp = p.Proc.asp in
    let uptr = Uarg.ptr_exn addr in
    let start =
      if Uarg.is_null uptr then
        (Addr_space.map_anywhere asp ~hint:0x3000_0000 ~len ~prot:Prot.rw
           ~shared:true ~name:(Printf.sprintf "shm:%d" id) ())
          .Addr_space.r_start
      else begin
        (* Fixed attach: under CheriABI the address must come from a valid
           capability carrying VMMAP. *)
        let a = require_vmmap p uptr ~len:0 in
        (Addr_space.map_fixed asp ~start:a ~len ~prot:Prot.rw ~shared:true
           ~name:(Printf.sprintf "shm:%d" id) ())
          .Addr_space.r_start
      end
    in
    (* Wire the shared frames directly into the page tables. *)
    Array.iteri
      (fun i f ->
        Phys.incref k.Kstate.phys f;
        Pmap.enter_frame (Addr_space.pmap asp)
          ~vaddr:(start + (i * Phys.page_size)) ~frame:f ~prot:Prot.rw
          ~cow:false)
      seg.Kstate.shm_frames;
    Kstate.charge k p 700;
    (match p.Proc.abi with
     | Abi.Mips64 | Abi.Asan -> RPtr (Uarg.Uaddr start)
     | Abi.Cheriabi ->
       let c = Cap.set_bounds (Cap.set_addr (Addr_space.root_cap asp) start)
           ~len in
       let c = Cap.and_perms c (Perms.union Perms.data Perms.vmmap) in
       Kstate.trace_grant k p ~origin:"syscall" c;
       RPtr (Uarg.Ucap c))
  | _ -> err Errno.EINVAL

let sys_shmdt k (p : Proc.t) = function
  | [ addr ] ->
    let start = require_vmmap p (Uarg.ptr_exn addr) ~len:0 in
    (try Addr_space.unmap p.Proc.asp ~start ~len:Phys.page_size
     with Addr_space.Map_error _ -> err Errno.EINVAL);
    Kstate.charge k p 300;
    RInt 0
  | _ -> err Errno.EINVAL

(* --- Processes --------------------------------------------------------------------------- *)

let sys_fork k (p : Proc.t) = function
  | [] ->
    let pid = Kstate.alloc_pid k in
    let casp = Addr_space.fork p.Proc.asp ~phys:k.Kstate.phys ~swap:k.Kstate.swap in
    let child = Proc.create ~pid ~parent:p.Proc.pid ~abi:p.Proc.abi ~asp:casp in
    child.Proc.ctx <- Cpu.copy_ctx p.Proc.ctx;
    child.Proc.ctx.Cpu.gpr.(Reg.v0) <- 0;
    child.Proc.ctx.Cpu.creg.(Reg.ca0) <- Cap.null;
    child.Proc.fds <- Array.map (fun e -> Option.iter Vfs.ref_entry e; e) p.Proc.fds;
    child.Proc.code <- p.Proc.code;
    child.Proc.linked <- p.Proc.linked;
    child.Proc.sigdisp <- Array.copy p.Proc.sigdisp;
    child.Proc.cwd <- p.Proc.cwd;
    child.Proc.comm <- p.Proc.comm;
    child.Proc.ps_strings <- p.Proc.ps_strings;
    (* The child shares the parent's image and DDC, so the proved facts
       carry over *by reference* — the table is append-only and
       Bbcache.set_facts guards by physical identity, so sharing (rather
       than copying) means parent/child context switches re-assert the
       same table without flushing the block cache, and a lazy table's
       memoized superblocks are paid for once across the whole process
       tree. Stamped under the child's own pmap generation, with the same
       code-range dependencies for partial invalidation. *)
    child.Proc.facts <- p.Proc.facts;
    child.Proc.facts_gen <- Pmap.generation (Addr_space.pmap casp);
    child.Proc.fact_regions <- p.Proc.fact_regions;
    Kstate.add_proc k child;
    (* Cost: address-space duplication, plus — for CheriABI — the larger
       capability trap frame and per-page tag bookkeeping. *)
    let pages = Pmap.entry_count (Addr_space.pmap p.Proc.asp) in
    let cfg = k.Kstate.config in
    let base = cfg.Kstate.fork_base_cost + (pages * cfg.Kstate.fork_page_cost) in
    let extra =
      match p.Proc.abi with
      | Abi.Cheriabi -> cfg.Kstate.fork_cap_frame_cost + pages
      | Abi.Mips64 | Abi.Asan -> 0
    in
    Kstate.charge k p (base + extra);
    child.Proc.ctx.Cpu.cycles <- p.Proc.ctx.Cpu.cycles;
    (* The child's heap pages were COW'd above; let the runtime library
       carry the matching allocator metadata over to the child's fresh
       address-space principal (a child that inherits live heap pointers
       must be able to free them). *)
    (match k.Kstate.on_fork with
     | Some f -> f k p child
     | None -> ());
    RInt pid
  | _ -> err Errno.EINVAL

let encode_status = function
  | Proc.Exited c -> c lsl 8
  | Proc.Signaled s -> s

let sys_wait4 k (p : Proc.t) = function
  | [ pid; statusp; _flags ] ->
    let want = Uarg.int_exn pid in
    let children =
      Hashtbl.fold
        (fun _ (q : Proc.t) acc ->
          if q.Proc.parent = p.Proc.pid && (want <= 0 || q.Proc.pid = want)
          then q :: acc
          else acc)
        k.Kstate.procs []
    in
    if children = [] then err Errno.ECHILD;
    (match List.find_opt Proc.is_zombie children with
     | Some z ->
       let status =
         match z.Proc.state with Proc.Zombie s -> s | _ -> assert false
       in
       let sp = Uarg.ptr_exn statusp in
       if not (Uarg.is_null sp) then begin
         let out = Bytes.create 8 in
         Bytes.set_int64_le out 0 (Int64.of_int (encode_status status));
         Kstate.copyout k p sp out
       end;
       Kstate.reap k z;
       RInt z.Proc.pid
     | None ->
       p.Proc.state <- Proc.Sleeping Proc.Wait_child;
       raise Restart)
  | _ -> err Errno.EINVAL

let sys_kill k (p : Proc.t) = function
  | [ pid; sig_ ] ->
    let pid = Uarg.int_exn pid and sig_ = Uarg.int_exn sig_ in
    if sig_ < 1 || sig_ >= Signo.nsig then err Errno.EINVAL;
    let target = Kstate.proc_exn k pid in
    if Proc.is_zombie target then err Errno.ESRCH;
    Proc.post_signal target sig_;
    (match target.Proc.state with
     | Proc.Sleeping _ -> target.Proc.state <- Proc.Runnable
     | _ -> ());
    ignore p;
    RInt 0
  | _ -> err Errno.EINVAL

let read_str_array k p uptr ~max =
  if Uarg.is_null uptr then []
  else begin
    let rec go i acc =
      if i >= max then err Errno.E2BIG
      else
        match Kstate.read_user_ptr_slot k p uptr i with
        | None -> List.rev acc
        | Some sp -> go (i + 1) (Kstate.copyin_str k p sp ~max:4096 :: acc)
    in
    go 0 []
  end

let sys_execve k (p : Proc.t) = function
  | [ path; argv; envv ] ->
    let path = Kstate.copyin_str k p (Uarg.ptr_exn path) ~max:1024 in
    let argv = read_str_array k p (Uarg.ptr_exn argv) ~max:256 in
    let envv = read_str_array k p (Uarg.ptr_exn envv) ~max:256 in
    (match Vfs.lookup k.Kstate.vfs path with
     | Some (Vfs.Exe (abi, image)) ->
       Exec.exec_image k p ~abi ~image ~argv ~envv;
       RNone
     | Some _ -> err Errno.EACCES
     | None -> err Errno.ENOENT)
  | _ -> err Errno.EINVAL

(* --- Signals -------------------------------------------------------------------------------- *)

(* sigaction struct: handler slot (pointer-sized per ABI) then 8 bytes of
   flags. Handler values 0 and 1 mean default and ignore. *)
let sys_sigaction k (p : Proc.t) = function
  | [ sig_; act; oact ] ->
    let sig_ = Uarg.int_exn sig_ in
    if sig_ < 1 || sig_ >= Signo.nsig || sig_ = Signo.sigkill then
      err Errno.EINVAL;
    let oactp = Uarg.ptr_exn oact in
    if not (Uarg.is_null oactp) then begin
      let prev = p.Proc.sigdisp.(sig_) in
      match p.Proc.abi with
      | Abi.Cheriabi ->
        let c =
          match prev with
          | Proc.Sig_default -> Cap.null
          | Proc.Sig_ignore -> Cap.untagged ~addr:1
          | Proc.Sig_handler (Uarg.Ucap c) -> c
          | Proc.Sig_handler (Uarg.Uaddr a) -> Cap.untagged ~addr:a
        in
        Kstate.write_user_cap k p oactp c
      | Abi.Mips64 | Abi.Asan ->
        let v =
          match prev with
          | Proc.Sig_default -> 0
          | Proc.Sig_ignore -> 1
          | Proc.Sig_handler (Uarg.Uaddr a) -> a
          | Proc.Sig_handler (Uarg.Ucap c) -> Cap.addr c
        in
        let out = Bytes.create 8 in
        Bytes.set_int64_le out 0 (Int64.of_int v);
        Kstate.copyout k p oactp out
    end;
    let actp = Uarg.ptr_exn act in
    if not (Uarg.is_null actp) then begin
      let disp =
        match p.Proc.abi with
        | Abi.Cheriabi ->
          let c = Kstate.read_user_cap k p actp in
          if Cap.is_tagged c then Proc.Sig_handler (Uarg.Ucap c)
          else if Cap.addr c = 0 then Proc.Sig_default
          else if Cap.addr c = 1 then Proc.Sig_ignore
          else
            (* Untagged non-trivial handler: provenance was lost. *)
            err Errno.EPROT
        | Abi.Mips64 | Abi.Asan ->
          let b = Kstate.copyin k p actp ~len:8 in
          (match Int64.to_int (Bytes.get_int64_le b 0) with
           | 0 -> Proc.Sig_default
           | 1 -> Proc.Sig_ignore
           | a -> Proc.Sig_handler (Uarg.Uaddr a))
      in
      p.Proc.sigdisp.(sig_) <- disp
    end;
    RInt 0
  | _ -> err Errno.EINVAL

let sys_sigreturn k p = function
  | [ frame ] ->
    Signal_dispatch.sigreturn k p (Uarg.ptr_exn frame);
    RNone
  | _ -> err Errno.EINVAL

(* --- Management interfaces: ioctl and sysctl ------------------------------------------------- *)

(* DIOC_GETCONF: the argument struct embeds a pointer the kernel writes
   through — the shape of the FreeBSD DHCP-client ioctl bug found by
   CheriABI (§5.4). Struct layout: buffer pointer (pointer-sized), then
   requested length (8 bytes). *)
let dioc_getconf_impl k (p : Proc.t) argp =
  let buf_ptr =
    match Kstate.read_user_ptr_slot k p argp 0 with
    | Some ptr -> ptr
    | None -> err Errno.EINVAL
  in
  let len_off = Abi.pointer_size p.Proc.abi in
  let len =
    Int64.to_int
      (Bytes.get_int64_le
         (Kstate.copyin k p
            (match argp with
             | Uarg.Ucap c -> Uarg.Ucap (Cap.inc_addr c len_off)
             | Uarg.Uaddr a -> Uarg.Uaddr (a + len_off))
            ~len:8)
         0)
  in
  if len < 0 || len > 1 lsl 20 then err Errno.EINVAL;
  (* The kernel fills [len] bytes of configuration data through the user's
     embedded pointer. If the caller under-allocated the buffer, a CheriABI
     capability faults here; a legacy kernel silently writes out of
     bounds. *)
  let data = Bytes.init len (fun i -> Char.chr ((i * 7 + 3) land 0xff)) in
  Kstate.copyout k p buf_ptr data;
  RInt 0

let sys_ioctl k (p : Proc.t) = function
  | [ fd; cmd; argp ] ->
    let fd = Uarg.int_exn fd and cmd = Uarg.int_exn cmd in
    let e = Proc.get_fd p fd in
    let argp = Uarg.ptr_exn argp in
    if cmd = Sysno.dioc_getconf then dioc_getconf_impl k p argp
    else begin
      match e.Vfs.fo_obj with
      | Vfs.ODev d ->
        let size = Sysno.ioc_size cmd in
        let dirs = Sysno.ioc_dir cmd in
        let input =
          if List.mem `In dirs then Kstate.copyin k p argp ~len:size
          else Bytes.create 0
        in
        (match d.Vfs.d_ioctl cmd input with
         | Ok out ->
           if List.mem `Out dirs then Kstate.copyout k p argp out;
           RInt 0
         | Error e -> err e)
      | _ -> err Errno.ENOTTY
    end
  | _ -> err Errno.EINVAL

(* sysctl: management information export. Kernel pointers are exposed as
   plain virtual addresses, never as capabilities (§4: "we have altered
   them to expose virtual addresses rather than kernel capabilities"). *)
let sys_sysctl k (p : Proc.t) = function
  | [ namep; _namelen; oldp; oldlenp; _newp; _newlen ] ->
    let name = Kstate.copyin_str k p (Uarg.ptr_exn namep) ~max:128 in
    let int_data v =
      let b = Bytes.create 8 in
      Bytes.set_int64_le b 0 (Int64.of_int v);
      b
    in
    let data =
      match name with
      | "kern.ostype" -> Bytes.of_string "CheriBSD-sim\000"
      | "kern.pid_max" -> int_data 65536
      | "hw.pagesize" -> int_data Phys.page_size
      | "kern.ps_strings" ->
        (* A user-visible kernel-held pointer: exported as an address. *)
        int_data p.Proc.ps_strings
      | "kern.ncpu" -> int_data 1
      | _ -> err Errno.ENOENT
    in
    let oldp = Uarg.ptr_exn oldp and oldlenp = Uarg.ptr_exn oldlenp in
    if not (Uarg.is_null oldlenp) then begin
      let avail =
        Int64.to_int (Bytes.get_int64_le (Kstate.copyin k p oldlenp ~len:8) 0)
      in
      if not (Uarg.is_null oldp) then begin
        let n = min avail (Bytes.length data) in
        Kstate.copyout k p oldp (Bytes.sub data 0 n)
      end;
      Kstate.copyout k p oldlenp (int_data (Bytes.length data))
    end;
    RInt 0
  | _ -> err Errno.EINVAL

(* --- kevent-lite -------------------------------------------------------------------------------

   The paper's example of syscalls that park user pointers in kernel data
   structures for later return: the registration stores the *capability*,
   and the poll hands it back intact — the kernel structure itself had to
   become capability-sized. *)

let sys_kevent_reg _k (p : Proc.t) = function
  | [ fd; udata ] ->
    let fd = Uarg.int_exn fd in
    ignore (Proc.get_fd p fd);
    p.Proc.kevents <- (fd, Uarg.ptr_exn udata) :: p.Proc.kevents;
    RInt 0
  | _ -> err Errno.EINVAL

let sys_kevent_poll k (p : Proc.t) = function
  | [ out ] ->
    let ready =
      List.find_opt (fun (fd, _) -> fd_ready p fd ~write:false) p.Proc.kevents
    in
    (match ready with
     | None -> RInt (-(Errno.to_code Errno.EAGAIN))
     | Some (fd, udata) ->
       let outp = Uarg.ptr_exn out in
       (match p.Proc.abi, udata with
        | Abi.Cheriabi, Uarg.Ucap c ->
          (* the stored capability returns with its tag intact *)
          Kstate.write_user_cap k p outp c
        | _, u ->
          let b = Bytes.create 8 in
          Bytes.set_int64_le b 0 (Int64.of_int (Uarg.addr_of_uptr u));
          Kstate.copyout k p outp b);
       RInt fd)
  | _ -> err Errno.EINVAL

(* --- ptrace ------------------------------------------------------------------------------------ *)

let sys_ptrace k (p : Proc.t) = function
  | [ req; pid; addr; data ] ->
    let req = Uarg.int_exn req
    and pid = Uarg.int_exn pid
    and data = Uarg.int_exn data in
    let addr = Uarg.ptr_exn addr in
    Ptrace_impl.dispatch k p ~req ~pid ~addr ~data
  | _ -> err Errno.EINVAL

(* --- Dispatch table ----------------------------------------------------------------------------- *)

let handler n =
  if n = Sysno.sys_exit then Some sys_exit
  else if n = Sysno.sys_fork then Some sys_fork
  else if n = Sysno.sys_read then Some sys_read
  else if n = Sysno.sys_write then Some sys_write
  else if n = Sysno.sys_open then Some sys_open
  else if n = Sysno.sys_close then Some sys_close
  else if n = Sysno.sys_wait4 then Some sys_wait4
  else if n = Sysno.sys_unlink then Some sys_unlink
  else if n = Sysno.sys_getpid then Some sys_getpid
  else if n = Sysno.sys_ptrace then Some sys_ptrace
  else if n = Sysno.sys_kill then Some sys_kill
  else if n = Sysno.sys_pipe then Some sys_pipe
  else if n = Sysno.sys_sigaction then Some sys_sigaction
  else if n = Sysno.sys_ioctl then Some sys_ioctl
  else if n = Sysno.sys_execve then Some sys_execve
  else if n = Sysno.sys_sbrk then Some sys_sbrk
  else if n = Sysno.sys_munmap then Some sys_munmap
  else if n = Sysno.sys_mprotect then Some sys_mprotect
  else if n = Sysno.sys_getcwd then Some sys_getcwd
  else if n = Sysno.sys_select then Some sys_select
  else if n = Sysno.sys_sigreturn then Some sys_sigreturn
  else if n = Sysno.sys_gettime then Some sys_gettime
  else if n = Sysno.sys_socketpair then Some sys_socketpair
  else if n = Sysno.sys_lseek then Some sys_lseek
  else if n = Sysno.sys_sysctl then Some sys_sysctl
  else if n = Sysno.sys_ftruncate then Some sys_ftruncate
  else if n = Sysno.sys_shmat then Some sys_shmat
  else if n = Sysno.sys_shmdt then Some sys_shmdt
  else if n = Sysno.sys_shmget then Some sys_shmget
  else if n = Sysno.sys_mmap then Some sys_mmap
  else if n = Sysno.sys_kevent_reg then Some sys_kevent_reg
  else if n = Sysno.sys_kevent_poll then Some sys_kevent_poll
  else None
