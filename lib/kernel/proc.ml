(* Processes.

   One thread per process (the structure allows more). Each process has an
   ABI, an address space with its own abstract principal, a capability
   register context, a descriptor table, signal state, and the decoded
   code map for its mapped text regions. *)

module Cap = Cheri_cap.Cap
module Cpu = Cheri_isa.Cpu
module Insn = Cheri_isa.Insn
module Abi = Cheri_core.Abi
module Addr_space = Cheri_vm.Addr_space

type exit_status =
  | Exited of int
  | Signaled of int

type wait_chan =
  | Wait_child
  | Wait_pipe of int       (* pipe id *)

type pstate =
  | Runnable
  | Sleeping of wait_chan
  | Stopped of int         (* stopping signal; used by ptrace *)
  | Zombie of exit_status

type sigdisp =
  | Sig_default
  | Sig_ignore
  | Sig_handler of Uarg.uptr   (* handler entry: address or code capability *)

let max_fds = 64

type t = {
  pid : int;
  mutable parent : int;
  mutable abi : Abi.t;
  mutable asp : Addr_space.t;
  mutable ctx : Cpu.ctx;
  mutable state : pstate;
  mutable fds : Vfs.fd_entry option array;
  mutable sigdisp : sigdisp array;
  mutable sig_pending : int list;             (* FIFO *)
  mutable code : (int * int * Insn.t array) list;  (* base, top, insns *)
  mutable linked : Cheri_rtld.Rtld.t option;
  mutable cwd : string;
  mutable traced_by : int option;
  mutable console : Buffer.t;                 (* captured fd-1/2 output *)
  mutable fault_log : string list;            (* most recent first *)
  mutable syscall_count : int;
  mutable comm : string;                      (* executable name *)
  mutable ps_strings : int;                   (* args block address *)
  (* Check-elision facts computed over this process's image at exec time
     (Kstate.config.fact_provider), plus the pmap generation they were
     computed under and the code ranges they depend on. On a generation
     mismatch, Loop.install_machine keeps the facts alive if every
     intervening pmap mutation (Pmap.mutations_since) missed
     [fact_regions] — munmap of a heap page must not throw away code
     analysis — and drops them otherwise. *)
  mutable facts : Cheri_isa.Facts.t option;
  mutable facts_gen : int;
  mutable fact_regions : (int * int) list;    (* (base, top) byte ranges *)
  (* kevent-style registrations: user data pointers the kernel holds for
     later return. Stored as full [Uarg.uptr] values so that CheriABI
     capabilities survive the round trip through kernel memory (4,
     "System calls"). *)
  mutable kevents : (int * Uarg.uptr) list;
}

let create ~pid ~parent ~abi ~asp =
  { pid; parent; abi; asp;
    ctx = Cpu.create_ctx ();
    state = Runnable;
    fds = Array.make max_fds None;
    sigdisp = Array.make Signo.nsig Sig_default;
    sig_pending = [];
    code = [];
    linked = None;
    cwd = "/root";
    traced_by = None;
    console = Buffer.create 256;
    fault_log = [];
    syscall_count = 0;
    comm = "";
    ps_strings = 0;
    facts = None;
    facts_gen = min_int;
    fact_regions = [];
    kevents = [] }

let is_runnable p = p.state = Runnable
let is_zombie p = match p.state with Zombie _ -> true | _ -> false

let log_fault p msg = p.fault_log <- msg :: p.fault_log

(* --- Code map -------------------------------------------------------------------- *)

let install_code p ~base insns =
  let top = base + (Array.length insns * 4) in
  p.code <- List.sort (fun (a, _, _) (b, _, _) -> compare a b)
      ((base, top, insns) :: p.code)

let clear_code p = p.code <- []

let fetch p vaddr =
  let rec go = function
    | [] -> Cheri_isa.Trap.raise_trap (Cheri_isa.Trap.Fetch_fault { vaddr })
    | (base, top, insns) :: rest ->
      if vaddr >= base && vaddr < top then insns.((vaddr - base) / 4)
      else go rest
  in
  go p.code

(* Entry of the straight-line run containing [pc]: walk back until just
   after a terminator (or the edge of decoded code). This is the same
   block notion the block engine and the static verifier use, so trap
   reports and absint diagnostics cross-reference by PC. *)
let block_entry_of p pc =
  let entry = ref pc in
  (try
     let scanning = ref true in
     while !scanning && pc - !entry < 4 * 63 do
       let prev = !entry - 4 in
       if Insn.is_terminator (fetch p prev) then scanning := false
       else entry := prev
     done
   with Cheri_isa.Trap.Trap _ -> ());
  !entry

(* Render the instruction at [pc] for fault reports. *)
let describe_pc p pc =
  match fetch p pc with
  | insn ->
    Printf.sprintf "at 0x%x: %s [block 0x%x]" pc (Insn.to_string insn)
      (block_entry_of p pc)
  | exception Cheri_isa.Trap.Trap _ -> Printf.sprintf "at 0x%x" pc

(* --- Descriptors ------------------------------------------------------------------ *)

let alloc_fd p entry =
  let rec go i =
    if i >= max_fds then Errno.raise_errno Errno.EMFILE
    else if p.fds.(i) = None then begin
      p.fds.(i) <- Some entry;
      i
    end else go (i + 1)
  in
  go 0

let get_fd p fd =
  if fd < 0 || fd >= max_fds then Errno.raise_errno Errno.EBADF;
  match p.fds.(fd) with
  | Some e -> e
  | None -> Errno.raise_errno Errno.EBADF

let close_fd p fd =
  let e = get_fd p fd in
  Vfs.close_entry e;
  p.fds.(fd) <- None

let close_all_fds p =
  Array.iteri
    (fun i e ->
      match e with
      | Some e ->
        Vfs.close_entry e;
        p.fds.(i) <- None
      | None -> ())
    p.fds

(* --- Signals ---------------------------------------------------------------------- *)

let post_signal p sig_ = p.sig_pending <- p.sig_pending @ [ sig_ ]

let take_signal p =
  match p.sig_pending with
  | [] -> None
  | s :: rest ->
    p.sig_pending <- rest;
    Some s
