(* Public facade of the kernel library. *)

module Errno = Errno
module Signo = Signo
module Uarg = Uarg
module Sysno = Sysno
module Vfs = Vfs
module Proc = Proc
module Kstate = Kstate
module Exec = Exec
module Sys_impl = Sys_impl
module Signal_dispatch = Signal_dispatch
module Ptrace_impl = Ptrace_impl
module Loop = Loop

type t = Kstate.t

let boot = Kstate.boot
let spawn = Exec.spawn
let run = Loop.run
let console_of = Kstate.console_of

(* Exit status of [pid], if it has terminated (and not yet been reaped). *)
let status_of k pid =
  match Kstate.find_proc k pid with
  | Some p ->
    (match p.Proc.state with
     | Proc.Zombie s -> Some s
     | Proc.Runnable | Proc.Sleeping _ | Proc.Stopped _ -> None)
  | None -> None

(* Drive the system in fixed instruction chunks until quiescence, until
   [p] is a zombie, or until [max_steps] total instructions, calling
   [on_chunk] after every chunk. The chunk boundary is observational
   only: scheduling decisions and simulated results are exactly those of
   one uninterrupted [run] (Loop.run resumes mid-quantum), which is what
   lets callers sample consoles or counters at deterministic points —
   the fleet layer stamps request-completion markers with simulated
   cycles this way. Returns total instructions executed. *)
let run_chunked ?(chunk = 20_000) ~max_steps k (p : Proc.t) ~on_chunk =
  let executed = ref 0 in
  let running = ref true in
  while !running do
    let n = run ~max_steps:chunk k in
    executed := !executed + n;
    on_chunk ();
    if n = 0 || Proc.is_zombie p || !executed >= max_steps then
      running := false
  done;
  !executed

(* Convenience: spawn a program, run the system to quiescence, and return
   (status, console output, fault log, the process itself). *)
let run_program ?(max_steps = 200_000_000) k ~path ~argv =
  let p = spawn k ~path ~argv () in
  let _ = run ~max_steps k in
  let status =
    match p.Proc.state with
    | Proc.Zombie s -> Some s
    | Proc.Runnable | Proc.Sleeping _ | Proc.Stopped _ -> None
  in
  status, Buffer.contents p.Proc.console, p
