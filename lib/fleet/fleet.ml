(* Multicore fleet simulation: shard whole simulated machines across OCaml 5
   domains.

   The per-machine model stays exactly what it was — one kernel, one pmap,
   one tagged memory, one block/chain cache, all mutable and owned by a
   single simulation. Scaling comes from isolation, not from parallelizing
   the model: each domain runs complete machines end to end, so nothing
   inside the deterministic simulation is ever touched by two domains.

   Shared BY REFERENCE across domains (immutable or internally locked):
   - compiled program images ([Sobj.image]): built up front in the
     spawning domain, read-only afterwards;
   - the image-keyed fact tables and the interprocedural summary cache
     ([Absint.cached_facts]/[Absint.cached_ipa]): mutex-guarded memo
     tables, with the per-table [Facts.t] lock serializing lazy
     resolution. Masks are deterministic functions of the entry pc, so
     whichever domain resolves an entry first, every machine observes the
     same facts — the phys-eq [Bbcache.set_facts] contract that already
     let one domain's processes share a table extends unchanged across
     domains.

   OWNED per machine (never shared): kernel state, processes, address
   spaces, tagged memory, cache hierarchy, the block/chain cache and its
   software TLBs, consoles, fault logs.

   Determinism: a machine's execution depends only on its spec (image,
   argv, chunk size) — never on the domain count, the scheduler's
   machine-to-domain assignment, or what other machines run concurrently.
   [run] with 1 domain and with N domains must produce bit-identical
   per-machine snapshots; test/test_fleet.ml enforces this differentially.

   Request latency is measured in SIMULATED cycles, not host time: the
   traffic workload's server prints one marker character per served
   request round, and the runner executes each machine in fixed-size
   instruction chunks, timestamping newly appeared markers with the server
   context's cycle counter. The chunk size quantizes the timestamps but is
   a constant of the runner, so latencies are deterministic and
   domain-count-independent too. *)

module Cap = Cheri_cap.Cap
module Cpu = Cheri_isa.Cpu
module Bbcache = Cheri_isa.Bbcache
module Tagmem = Cheri_tagmem.Tagmem
module Cache = Cheri_tagmem.Cache
module Abi = Cheri_core.Abi
module Kernel = Cheri_kernel.Kernel
module Kstate = Cheri_kernel.Kstate
module Proc = Cheri_kernel.Proc
module Vfs = Cheri_kernel.Vfs
module Absint = Cheri_analysis.Absint
module Runtime = Cheri_libc.Runtime
module Malloc_impl = Cheri_libc.Malloc_impl
module Stdlib_src = Cheri_workloads.Stdlib_src
module Openssl_sim = Cheri_workloads.Openssl_sim

(* --- Machine specification ------------------------------------------------- *)

type machine_spec = {
  ms_label : string;
  ms_abi : Abi.t;
  ms_image : Cheri_rtld.Sobj.image;  (* prebuilt in the spawning domain *)
  ms_path : string;
  ms_argv : string list;
  ms_max_steps : int;                (* runaway bound, in instructions *)
  ms_marker : char;                  (* request-completion console marker *)
}

(* Executing in fixed chunks (rather than one [Loop.run] to quiescence)
   exists solely to sample the console between chunks for latency stamps.
   The value is a runner constant — part of the deterministic contract, so
   it must not depend on domain count or host behavior. One timeslice
   (Kstate default quantum 20k) keeps stamp quantization near the
   scheduler's own granularity at ~zero re-dispatch overhead. *)
let chunk_insns = 20_000

type machine_result = {
  mr_label : string;
  mr_domain : int;                 (* domain that ran it (reporting only) *)
  mr_stolen : bool;                (* arrived via work stealing *)
  mr_status : Proc.exit_status option;
  mr_output : string;
  mr_insns : int;                  (* all processes, via Loop.run *)
  mr_cycles : int;                 (* server context cycles at the end *)
  mr_l2_misses : int;
  mr_syscalls : int;
  mr_requests : int;               (* marker count *)
  mr_latencies : int array;        (* sim cycles between completions *)
  mr_host_seconds : float;
  mr_snapshot : string;            (* full architectural state rendering *)
  mr_alloc : (string * int) list;  (* machine-lifetime allocator counters *)
}

(* --- Snapshot --------------------------------------------------------------- *)

let status_str = function
  | None -> "running"
  | Some (Proc.Exited n) -> Printf.sprintf "exited %d" n
  | Some (Proc.Signaled n) -> Printf.sprintf "signaled %d" n

(* Everything 1-domain and N-domain runs must agree on, rendered printable
   so a divergence shows up as a readable diff (same spirit as the engine
   fuzzer's snapshot): final architectural state of the driven process,
   console, fault log, cache-hierarchy counters, and digests of the whole
   physical memory and tag map. *)
let snapshot k (p : Proc.t) status =
  let b = Buffer.create 1024 in
  let ctx = p.Proc.ctx in
  Printf.bprintf b "status=%s\n" (status_str status);
  Printf.bprintf b "instret=%d cycles=%d\n" ctx.Cpu.instret ctx.Cpu.cycles;
  Printf.bprintf b "pcc=%s\nddc=%s\n" (Cap.to_string ctx.Cpu.pcc)
    (Cap.to_string ctx.Cpu.ddc);
  for r = 1 to 31 do
    if ctx.Cpu.gpr.(r) <> 0 then Printf.bprintf b "r%d=%x " r ctx.Cpu.gpr.(r)
  done;
  Buffer.add_char b '\n';
  for r = 1 to 31 do
    if not (Cap.equal ctx.Cpu.creg.(r) Cap.null) then
      Printf.bprintf b "c%d=%s\n" r (Cap.to_string ctx.Cpu.creg.(r))
  done;
  let h = Kstate.hierarchy k in
  Printf.bprintf b "il1=%d/%d dl1=%d/%d l2=%d/%d\n"
    (Cache.hits h.Cache.il1) (Cache.misses h.Cache.il1)
    (Cache.hits h.Cache.dl1) (Cache.misses h.Cache.dl1)
    (Cache.hits h.Cache.l2) (Cache.misses h.Cache.l2);
  Printf.bprintf b "syscalls=%d\n" p.Proc.syscall_count;
  (* Machine-lifetime allocator counters: shard traffic (remote frees,
     drains, ownership-change sweeps) must be bit-identical across domain
     counts, so it belongs in the differential snapshot. *)
  Printf.bprintf b "alloc=%s\n"
    (String.concat " "
       (List.map
          (fun (name, v) -> Printf.sprintf "%s:%d" name v)
          (Malloc_impl.machine_counters k)));
  Printf.bprintf b "faults=%s\n" (String.concat "|" p.Proc.fault_log);
  Printf.bprintf b "console=%s\n" (String.escaped (Buffer.contents p.Proc.console));
  let mem = k.Kstate.mem in
  let size = Tagmem.size mem in
  Printf.bprintf b "data=%s\n"
    (Digest.to_hex (Digest.bytes (Tagmem.read_bytes mem 0 size)));
  Printf.bprintf b "tags=%s\n"
    (Digest.to_hex
       (Digest.string
          (String.concat ","
             (List.map string_of_int (Tagmem.scan_tags mem 0 size)))));
  Buffer.contents b

(* --- Running one machine ---------------------------------------------------- *)

let count_marker s c =
  let n = ref 0 in
  String.iter (fun ch -> if ch = c then incr n) s;
  !n

(* Boot, run to completion in [chunk_insns] chunks, stamp request markers,
   snapshot. [engine]/[elide] configure the kernel exactly as the engine
   bench does; the fact provider hits the shared (domain-safe) Absint
   caches. *)
let run_machine ?(engine = Cpu.Chain) ?(elide = true) spec =
  let host0 = Unix.gettimeofday () in
  let k = Kernel.boot () in
  k.Kstate.config.Kstate.engine <- engine;
  if elide then
    k.Kstate.config.Kstate.fact_provider <- Some (Absint.provider ());
  Runtime.install k;
  Vfs.add_exe k.Kstate.vfs spec.ms_path ~abi:spec.ms_abi spec.ms_image;
  let p = Kernel.spawn k ~path:spec.ms_path ~argv:spec.ms_argv () in
  let stamps = ref [] in                     (* newest first *)
  let seen = ref 0 in
  let executed =
    Kernel.run_chunked ~chunk:chunk_insns ~max_steps:spec.ms_max_steps k p
      ~on_chunk:(fun () ->
        let total =
          count_marker (Buffer.contents p.Proc.console) spec.ms_marker
        in
        if total > !seen then begin
          let cyc = p.Proc.ctx.Cpu.cycles in
          for _ = !seen + 1 to total do stamps := cyc :: !stamps done;
          seen := total
        end)
  in
  let status =
    match p.Proc.state with Proc.Zombie s -> Some s | _ -> None
  in
  (* Completion stamps -> per-request latencies (delta from the previous
     completion; the first request is charged from machine start, so it
     includes boot + handshake — deterministically). *)
  let ordered = Array.of_list (List.rev !stamps) in
  let lats =
    Array.mapi
      (fun i s -> if i = 0 then s else s - ordered.(i - 1))
      ordered
  in
  { mr_label = spec.ms_label;
    mr_domain = 0;
    mr_stolen = false;
    mr_status = status;
    mr_output = Buffer.contents p.Proc.console;
    mr_insns = executed;
    mr_cycles = p.Proc.ctx.Cpu.cycles;
    mr_l2_misses = Cache.l2_misses (Kstate.hierarchy k);
    mr_syscalls = p.Proc.syscall_count;
    mr_requests = !seen;
    mr_latencies = lats;
    mr_host_seconds = Unix.gettimeofday () -. host0;
    mr_snapshot = snapshot k p status;
    mr_alloc = Malloc_impl.machine_counters k }

(* --- Work-stealing scheduler ------------------------------------------------ *)

(* One mutex-guarded deque of spec indices per domain, seeded round-robin.
   Owners pop from the head; a domain whose deque drains steals from the
   TAIL of the first non-empty victim (classic owner-head/thief-tail
   split, so thieves take the work the owner would reach last). The locks
   are per-deque and never nested, so there is no ordering concern.
   Stealing only changes WHICH domain runs a machine — never how the
   machine runs — so heterogeneous run lengths load-balance without
   touching determinism. *)
type deque = { dq_lock : Mutex.t; mutable dq : int list }

type sched = {
  deques : deque array;
  steals : int Atomic.t;
}

let make_sched ~domains specs_n =
  let deques =
    Array.init domains (fun _ -> { dq_lock = Mutex.create (); dq = [] })
  in
  for i = specs_n - 1 downto 0 do
    let d = deques.(i mod domains) in
    d.dq <- i :: d.dq
  done;
  { deques; steals = Atomic.make 0 }

let pop_own sc d =
  let q = sc.deques.(d) in
  Mutex.protect q.dq_lock (fun () ->
      match q.dq with
      | [] -> None
      | i :: rest ->
        q.dq <- rest;
        Some i)

let steal sc d =
  let n = Array.length sc.deques in
  let rec try_victim k =
    if k >= n then None
    else
      let v = (d + k) mod n in
      let q = sc.deques.(v) in
      let got =
        Mutex.protect q.dq_lock (fun () ->
            match List.rev q.dq with
            | [] -> None
            | last :: rev_rest ->
              q.dq <- List.rev rev_rest;
              Some last)
      in
      match got with
      | Some i ->
        Atomic.incr sc.steals;
        Some i
      | None -> try_victim (k + 1)
  in
  try_victim 1

let next_task sc d =
  match pop_own sc d with
  | Some i -> Some (i, false)
  | None -> (match steal sc d with Some i -> Some (i, true) | None -> None)

(* --- Fleet run -------------------------------------------------------------- *)

type report = {
  f_domains : int;                    (* requested sharding width *)
  f_workers : int;                    (* domains actually spawned (see [run]) *)
  f_results : machine_result array;   (* in spec order *)
  f_insns : int;                      (* total simulated instructions *)
  f_host_seconds : float;             (* wall clock for the whole fleet *)
  f_mips : float;                     (* aggregate sim-MIPS *)
  f_util : float array;               (* per-domain busy / wall *)
  f_steals : int;
  f_requests : int;
  f_p50 : int;                        (* request latency percentiles, *)
  f_p95 : int;                        (*   in simulated cycles *)
  f_p99 : int;
}

(* Nearest-rank percentile over all machines' latencies. *)
let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then 0
  else
    let rank = int_of_float (ceil (q *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

(* Run every spec to completion across [domains] domains and aggregate.
   Worker 0 runs on the calling domain; the rest are spawned. All results
   are published by [Domain.join] before aggregation reads them.

   By default live workers are capped at the host's recommended domain
   count: OCaml 5 minor collections are stop-the-world rendezvous across
   every running domain, so oversubscribing domains past the core count
   does not just serialize — each collection waits for descheduled domains
   to reach their safepoint, and measured throughput collapses well below
   the single-domain baseline. Requesting more domains than cores then
   runs [min domains cores] workers over the same work-stealing deques
   (machine results are identical either way — that is the determinism
   contract). [~oversubscribe:true] disables the cap: the differential
   tests use it to force REAL cross-domain execution even on a one-core
   host, where correctness, not throughput, is being tested. *)
let run ?(engine = Cpu.Chain) ?(elide = true) ?(oversubscribe = false)
    ~domains specs =
  if domains < 1 then invalid_arg "Fleet.run: domains < 1";
  let workers =
    if oversubscribe then domains
    else max 1 (min domains (Domain.recommended_domain_count ()))
  in
  let specs = Array.of_list specs in
  let n = Array.length specs in
  let sc = make_sched ~domains:workers n in
  let results : machine_result option array = Array.make n None in
  let busy = Array.make workers 0.0 in
  let wall0 = Unix.gettimeofday () in
  let worker d =
    let rec loop () =
      match next_task sc d with
      | None -> ()
      | Some (i, stolen) ->
        let r = run_machine ~engine ~elide specs.(i) in
        results.(i) <- Some { r with mr_domain = d; mr_stolen = stolen };
        busy.(d) <- busy.(d) +. r.mr_host_seconds;
        loop ()
    in
    loop ()
  in
  let others =
    Array.init (workers - 1) (fun j -> Domain.spawn (fun () -> worker (j + 1)))
  in
  worker 0;
  Array.iter Domain.join others;
  let wall = Unix.gettimeofday () -. wall0 in
  let results =
    Array.mapi
      (fun i -> function
        | Some r -> r
        | None ->
          failwith
            (Printf.sprintf "Fleet.run: machine %d (%s) never ran" i
               specs.(i).ms_label))
      results
  in
  let insns = Array.fold_left (fun a r -> a + r.mr_insns) 0 results in
  let requests = Array.fold_left (fun a r -> a + r.mr_requests) 0 results in
  let all_lats = Array.concat (List.map (fun r -> r.mr_latencies)
                                 (Array.to_list results)) in
  Array.sort compare all_lats;
  { f_domains = domains;
    f_workers = workers;
    f_results = results;
    f_insns = insns;
    f_host_seconds = wall;
    f_mips = float_of_int insns /. wall /. 1e6;
    f_util = Array.map (fun b -> if wall > 0.0 then b /. wall else 0.0) busy;
    f_steals = Atomic.get sc.steals;
    f_requests = requests;
    f_p50 = percentile all_lats 0.50;
    f_p95 = percentile all_lats 0.95;
    f_p99 = percentile all_lats 0.99 }

(* --- Standard mixes --------------------------------------------------------- *)

(* Heterogeneous s_server traffic mix: three service classes (short,
   medium, long — the long class serves 3x the rounds of the short one at
   double the record size), machines assigned round-robin. Machines of one
   class share a single prebuilt image, so the fleet also exercises
   cross-domain sharing of the image-keyed analysis caches; classes differ
   in code (distinct images) as well as load. All images are built here,
   in the calling domain, before any domain spawns. *)
let traffic_classes ~rounds =
  [ ("short", rounds, 256, 11);
    ("medium", rounds * 2, 384, 23);
    ("long", rounds * 3, 512, 37) ]

let traffic_mix ?(abi = Abi.Cheriabi) ~machines ~rounds () =
  let classes =
    List.map
      (fun (cname, r, payload, seed) ->
        let src = Openssl_sim.traffic_server_src ~rounds:r ~payload ~seed in
        let image =
          Stdlib_src.build_image ~abi ~name:("s_server_" ^ cname)
            ~extra_libs:[ "libssl", Openssl_sim.libssl_src ]
            src
        in
        (cname, image))
      (traffic_classes ~rounds)
  in
  let classes = Array.of_list classes in
  List.init machines (fun i ->
      let cname, image = classes.(i mod Array.length classes) in
      { ms_label = Printf.sprintf "s_server/%s/%d" cname i;
        ms_abi = abi;
        ms_image = image;
        ms_path = "/bin/s_server";
        ms_argv = [ "s_server"; "-port"; string_of_int (4433 + i) ];
        ms_max_steps = 400_000_000;
        ms_marker = '#' })
